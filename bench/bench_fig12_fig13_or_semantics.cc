// Reproduces Appendix A.3's experiments: Figure 12(a) (set difference
// between AND- and OR-semantics result sets as k varies), Figure 12(b)
// (execution time of the two), and Figure 13 (queries enumerated vs
// evaluated under both semantics for NAIVE and FASTTOPK).
#include <cstdio>
#include <set>

#include "common/string_util.h"

#include "bench/bench_util.h"
#include "strategy/or_semantics.h"

int main(int argc, char** argv) {
  using namespace s4;
  using namespace s4::bench;
  using datagen::EsBucket;

  JsonInit(argc, argv, "fig12_fig13_or_semantics");
  PrintHeader("Figures 12-13: AND vs OR column mapping (App A.3)",
              "CSUPP-sim; OR = aggregate FASTTOPK over all non-empty"
              " column subsets");

  std::unique_ptr<World> world =
      CsuppWorld(static_cast<int32_t>(EnvInt("S4_BENCH_CSUPP_SCALE", 1)));
  const int32_t es_count =
      static_cast<int32_t>(EnvInt("S4_BENCH_ES_COUNT", 12));
  Workload workload = MakeWorkload(*world, es_count);

  std::printf("Figure 12(a): avg |top-k(AND) \\ top-k(OR)| per ES\n");
  TablePrinter t12a({"k", "avg set difference", "identical result sets"});
  for (int32_t k : {5, 10, 20, 50}) {
    SearchOptions options;
    options.enumeration.max_tree_size = 4;
    options.k = k;
    double diff_sum = 0.0;
    int identical = 0;
    for (const datagen::GeneratedEs& es : workload.es) {
      SearchResult and_r =
          SearchFastTopK(*world->index, *world->graph, es.sheet, options);
      SearchResult or_r = SearchOrSemantics(*world->index, *world->graph,
                                            es.sheet, options);
      std::set<std::string> and_set, or_set;
      for (const ScoredQuery& sq : and_r.topk) {
        and_set.insert(sq.query.signature());
      }
      for (const ScoredQuery& sq : or_r.topk) {
        or_set.insert(sq.query.signature());
      }
      int diff = 0;
      for (const std::string& sig : and_set) {
        if (or_set.count(sig) == 0) ++diff;
      }
      diff_sum += diff;
      if (diff == 0 && and_set.size() == or_set.size()) ++identical;
    }
    t12a.AddRow({TablePrinter::Int(k),
                 TablePrinter::Num(diff_sum / workload.es.size(), 2),
                 StrFormat("%d/%zu", identical, workload.es.size())});
  }
  t12a.Print();
  std::printf(
      "paper's shape: for small k the result sets barely differ — full"
      " mappings dominate the ranking even under OR semantics.\n\n");

  std::printf("Figure 12(b): execution time AND vs OR per bucket\n");
  TablePrinter t12b({"bucket", "semantics", "enum+ub (ms)", "eval (ms)",
                     "total (ms)"});
  SearchOptions options;
  options.enumeration.max_tree_size = 4;
  for (EsBucket bucket :
       {EsBucket::kLow, EsBucket::kMedium, EsBucket::kHigh}) {
    Agg and_agg, or_agg, direct_agg;
    for (size_t i : workload.InBucket(bucket)) {
      and_agg.Add(SearchFastTopK(*world->index, *world->graph,
                                 workload.es[i].sheet, options)
                      .stats);
      or_agg.Add(SearchOrSemantics(*world->index, *world->graph,
                                   workload.es[i].sheet, options)
                     .stats);
      direct_agg.Add(SearchOrSemantics(*world->index, *world->graph,
                                       workload.es[i].sheet, options,
                                       OrStrategy::kDirect)
                         .stats);
    }
    if (and_agg.runs == 0) continue;
    t12b.AddRow({datagen::EsBucketName(bucket), "AND",
                 TablePrinter::Num(and_agg.AvgEnumMs(), 3),
                 TablePrinter::Num(and_agg.AvgEvalMs(), 3),
                 TablePrinter::Num(and_agg.AvgTotalMs(), 3)});
    t12b.AddRow({datagen::EsBucketName(bucket), "OR (subsets)",
                 TablePrinter::Num(or_agg.AvgEnumMs(), 3),
                 TablePrinter::Num(or_agg.AvgEvalMs(), 3),
                 TablePrinter::Num(or_agg.AvgTotalMs(), 3)});
    t12b.AddRow({datagen::EsBucketName(bucket), "OR (direct)",
                 TablePrinter::Num(direct_agg.AvgEnumMs(), 3),
                 TablePrinter::Num(direct_agg.AvgEvalMs(), 3),
                 TablePrinter::Num(direct_agg.AvgTotalMs(), 3)});
  }
  t12b.Print();
  std::printf(
      "paper's shape: OR costs only modestly more — the full-column"
      " subset dominates the runtime.\n\n");

  std::printf("Figure 13: queries enumerated vs evaluated\n");
  TablePrinter t13({"strategy", "semantics", "enumerated/ES",
                    "evaluated/ES"});
  Agg naive_and, naive_or, fast_and, fast_or;
  for (const datagen::GeneratedEs& es : workload.es) {
    naive_and.Add(
        SearchNaive(*world->index, *world->graph, es.sheet, options).stats);
    naive_or.Add(SearchOrSemantics(*world->index, *world->graph, es.sheet,
                                   options, OrStrategy::kNaive)
                     .stats);
    fast_and.Add(
        SearchFastTopK(*world->index, *world->graph, es.sheet, options)
            .stats);
    fast_or.Add(SearchOrSemantics(*world->index, *world->graph, es.sheet,
                                  options, OrStrategy::kFastTopK)
                    .stats);
  }
  auto row = [&](const char* strat, const char* sem, const Agg& a) {
    t13.AddRow({strat, sem,
                TablePrinter::Num(
                    static_cast<double>(a.queries_enumerated) /
                        static_cast<double>(a.runs),
                    1),
                TablePrinter::Num(a.AvgEvaluated(), 1)});
  };
  row("Naive", "AND", naive_and);
  row("Naive", "OR", naive_or);
  row("FastTopK", "AND", fast_and);
  row("FastTopK", "OR", fast_or);
  t13.Print();
  std::printf(
      "\npaper's shape: OR enumerates more queries than AND; FASTTOPK"
      " evaluates a small fraction of either.\n");
  return 0;
}
