// Database binary snapshot round-trips.
#include <cstdio>

#include <gtest/gtest.h>

#include "datagen/random_schema.h"
#include "datagen/synthetic.h"
#include "storage/serialize.h"
#include "strategy/strategy.h"
#include "tests/test_util.h"

namespace s4 {
namespace {

std::string TempPath(const char* name) {
  const char* dir = std::getenv("TMPDIR");
  return std::string(dir != nullptr ? dir : "/tmp") + "/" + name;
}

void ExpectSameDatabase(const Database& a, const Database& b) {
  ASSERT_EQ(a.NumTables(), b.NumTables());
  for (TableId t = 0; t < a.NumTables(); ++t) {
    const Table& ta = a.table(t);
    const Table& tb = b.table(t);
    EXPECT_EQ(ta.name(), tb.name());
    ASSERT_EQ(ta.NumColumns(), tb.NumColumns());
    EXPECT_EQ(ta.primary_key_column(), tb.primary_key_column());
    ASSERT_EQ(ta.NumRows(), tb.NumRows());
    for (int32_t c = 0; c < ta.NumColumns(); ++c) {
      EXPECT_EQ(ta.column(c).name, tb.column(c).name);
      EXPECT_EQ(ta.column(c).type, tb.column(c).type);
      for (int64_t r = 0; r < ta.NumRows(); ++r) {
        EXPECT_EQ(ta.GetValue(r, c), tb.GetValue(r, c))
            << ta.name() << " row " << r << " col " << c;
      }
    }
  }
  ASSERT_EQ(a.foreign_keys().size(), b.foreign_keys().size());
  for (size_t i = 0; i < a.foreign_keys().size(); ++i) {
    EXPECT_EQ(a.foreign_keys()[i], b.foreign_keys()[i]);
  }
}

TEST(SerializeTest, TpchRoundTrip) {
  const std::string path = TempPath("s4_tpch.s4db");
  ASSERT_TRUE(SaveDatabase(testing::TpchDb(), path).ok());
  auto loaded = LoadDatabase(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_TRUE(loaded->finalized());
  ExpectSameDatabase(testing::TpchDb(), *loaded);
  std::remove(path.c_str());
}

TEST(SerializeTest, NullsAndRandomSchemasRoundTrip) {
  for (uint64_t seed : {2u, 8u}) {
    datagen::RandomSchemaOptions opts;
    opts.seed = seed;
    auto db = datagen::MakeRandomSchema(opts);
    ASSERT_TRUE(db.ok());
    const std::string path = TempPath("s4_rand.s4db");
    ASSERT_TRUE(SaveDatabase(*db, path).ok());
    auto loaded = LoadDatabase(path);
    ASSERT_TRUE(loaded.ok()) << loaded.status();
    ExpectSameDatabase(*db, *loaded);
    std::remove(path.c_str());
  }
}

TEST(SerializeTest, SearchResultsSurviveRoundTrip) {
  const std::string path = TempPath("s4_search.s4db");
  ASSERT_TRUE(SaveDatabase(testing::TpchDb(), path).ok());
  auto loaded = LoadDatabase(path);
  ASSERT_TRUE(loaded.ok());
  auto index = IndexSet::Build(*loaded);
  ASSERT_TRUE(index.ok());
  SchemaGraph graph(*loaded);
  auto sheet = ExampleSpreadsheet::FromCells(
      {{"Rick", "USA", "Xbox"}, {"Julie", "", "iPhone"}},
      (*index)->tokenizer());
  ASSERT_TRUE(sheet.ok());
  SearchOptions options;
  SearchResult from_loaded = SearchFastTopK(**index, graph, *sheet, options);

  auto orig_sheet = ExampleSpreadsheet::FromCells(
      {{"Rick", "USA", "Xbox"}, {"Julie", "", "iPhone"}},
      testing::TpchIndex().tokenizer());
  SearchResult from_orig = SearchFastTopK(
      testing::TpchIndex(), testing::TpchGraph(), *orig_sheet, options);

  ASSERT_EQ(from_loaded.topk.size(), from_orig.topk.size());
  for (size_t i = 0; i < from_loaded.topk.size(); ++i) {
    EXPECT_NEAR(from_loaded.topk[i].score, from_orig.topk[i].score, 1e-9);
    EXPECT_EQ(from_loaded.topk[i].query.signature(),
              from_orig.topk[i].query.signature());
  }
  std::remove(path.c_str());
}

TEST(SerializeTest, RejectsGarbage) {
  const std::string path = TempPath("s4_garbage.s4db");
  {
    FILE* f = std::fopen(path.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    std::fputs("not a database", f);
    std::fclose(f);
  }
  EXPECT_FALSE(LoadDatabase(path).ok());
  EXPECT_FALSE(LoadDatabase("/nonexistent/nope.s4db").ok());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace s4
