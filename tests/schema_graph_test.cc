// Schema graph construction and traversal tests.
#include <gtest/gtest.h>

#include "schema/schema_graph.h"
#include "tests/test_util.h"

namespace s4 {
namespace {

using testing::TpchDb;
using testing::TpchGraph;

TEST(SchemaGraphTest, VerticesAndEdges) {
  const SchemaGraph& g = TpchGraph();
  EXPECT_EQ(g.NumVertices(), 7);
  EXPECT_EQ(g.NumEdges(), 7);
  // Edge order follows the declaration order in MakeTpchMini.
  EXPECT_EQ(TpchDb().table(g.edge(0).src).name(), "Customer");
  EXPECT_EQ(TpchDb().table(g.edge(0).dst).name(), "Nation");
  EXPECT_EQ(g.edge(0).label, "NatId");
}

TEST(SchemaGraphTest, IncidenceBothDirections) {
  const SchemaGraph& g = TpchGraph();
  const TableId nation = TpchDb().FindTable("Nation")->id();
  // Nation is referenced by Customer and Supplier: two backward
  // incidences, no forward ones.
  int fwd = 0, bwd = 0;
  for (const SchemaGraph::Incidence& inc : g.IncidentEdges(nation)) {
    if (inc.dir == EdgeDir::kForward) {
      ++fwd;
    } else {
      ++bwd;
      EXPECT_EQ(g.edge(inc.edge).dst, nation);
    }
  }
  EXPECT_EQ(fwd, 0);
  EXPECT_EQ(bwd, 2);

  const TableId lineitem = TpchDb().FindTable("LineItem")->id();
  fwd = 0;
  for (const SchemaGraph::Incidence& inc : g.IncidentEdges(lineitem)) {
    if (inc.dir == EdgeDir::kForward) ++fwd;
  }
  EXPECT_EQ(fwd, 2);  // Orders, Part
}

TEST(SchemaGraphTest, UndirectedDistance) {
  const SchemaGraph& g = TpchGraph();
  auto id = [&](const char* n) { return TpchDb().FindTable(n)->id(); };
  EXPECT_EQ(g.UndirectedDistance(id("Nation"), id("Nation")), 0);
  EXPECT_EQ(g.UndirectedDistance(id("Customer"), id("Nation")), 1);
  EXPECT_EQ(g.UndirectedDistance(id("LineItem"), id("Nation")), 3);
  EXPECT_EQ(g.UndirectedDistance(id("Part"), id("Nation")), 3);
}

TEST(SchemaGraphTest, DisconnectedDistance) {
  Database db;
  auto a = db.AddTable("A");
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE((*a)->AddColumn("Id", ColumnType::kInt64).ok());
  ASSERT_TRUE((*a)->SetPrimaryKey(0).ok());
  auto b = db.AddTable("B");
  ASSERT_TRUE(b.ok());
  ASSERT_TRUE((*b)->AddColumn("Id", ColumnType::kInt64).ok());
  ASSERT_TRUE((*b)->SetPrimaryKey(0).ok());
  ASSERT_TRUE(db.Finalize().ok());
  SchemaGraph g(db);
  EXPECT_EQ(g.UndirectedDistance(0, 1), -1);
}

TEST(SchemaGraphTest, ToStringListsEdges) {
  std::string s = TpchGraph().ToString();
  EXPECT_NE(s.find("Customer.NatId -> Nation"), std::string::npos);
  EXPECT_NE(s.find("LineItem.PartId -> Part"), std::string::npos);
}

}  // namespace
}  // namespace s4
