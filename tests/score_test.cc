// Validates the scoring model (Sec 2.3) against the paper's worked
// examples and properties (Prop 1, Prop 2).
#include <cmath>

#include <gtest/gtest.h>

#include "enumerate/enumerator.h"
#include "exec/evaluator.h"
#include "score/score_context.h"
#include "score/score_model.h"
#include "tests/test_util.h"

namespace s4 {
namespace {

using testing::Fig2aSheet;
using testing::TpchGraph;
using testing::TpchIndex;

// Finds the enumerated candidate whose ES column A maps to the given
// database column (identifying the paper's queries (i)/(ii)/(iii)).
const CandidateQuery* FindByColumnA(const std::vector<CandidateQuery>& cands,
                                    const std::string& table,
                                    const std::string& column,
                                    int32_t tree_size) {
  const Database& db = TpchIndex().db();
  for (const CandidateQuery& c : cands) {
    if (c.query.tree().size() != tree_size) continue;
    for (const ProjectionBinding& b : c.query.bindings()) {
      if (b.es_column != 0) continue;
      const Table& t = db.table(c.query.tree().node(b.node).table);
      if (t.name() == table && t.column(b.column).name == column) return &c;
    }
  }
  return nullptr;
}

class PaperExamplesTest : public ::testing::Test {
 protected:
  PaperExamplesTest()
      : sheet_(Fig2aSheet(TpchIndex())),
        ctx_(TpchIndex(), sheet_, ScoreParams{}),
        result_(EnumerateCandidates(TpchGraph(), ctx_)) {}

  std::vector<double> RowScores(const PJQuery& q) {
    Evaluator ev(ctx_);
    EvalCounters counters;
    return ev.RowScores(q, nullptr, &counters);
  }

  ExampleSpreadsheet sheet_;
  ScoreContext ctx_;
  EnumerationResult result_;
};

// Example 2: score_row of query (iii) (A -> Orders.Clerk) is 2+1+1 = 4.
TEST_F(PaperExamplesTest, Example2RowScoreQueryIii) {
  const CandidateQuery* q =
      FindByColumnA(result_.candidates, "Orders", "Clerk", 5);
  ASSERT_NE(q, nullptr);
  std::vector<double> scores = RowScores(q->query);
  ASSERT_EQ(scores.size(), 3u);
  EXPECT_DOUBLE_EQ(scores[0], 2.0);  // Julie/USA/Samsung row: USA+? -> 2
  EXPECT_DOUBLE_EQ(scores[0] + scores[1] + scores[2], 4.0);
}

// Example 2: score_row of query (ii) (A -> Supplier.SuppName) is
// 2 + 1 + 2 = 5.
TEST_F(PaperExamplesTest, Example2RowScoreQueryIi) {
  const CandidateQuery* q =
      FindByColumnA(result_.candidates, "Supplier", "SuppName", 4);
  ASSERT_NE(q, nullptr);
  std::vector<double> scores = RowScores(q->query);
  ASSERT_EQ(scores.size(), 3u);
  EXPECT_DOUBLE_EQ(scores[0], 2.0);
  EXPECT_DOUBLE_EQ(scores[1], 1.0);
  EXPECT_DOUBLE_EQ(scores[2], 2.0);
}

// Example 3: score_col of (ii) is 5 (only 'Rick' of column A appears in
// Supplier.SuppName), and score_col of (iii) is 3+2+2 = 7.
TEST_F(PaperExamplesTest, Example3ColumnScores) {
  const CandidateQuery* qii =
      FindByColumnA(result_.candidates, "Supplier", "SuppName", 4);
  ASSERT_NE(qii, nullptr);
  EXPECT_DOUBLE_EQ(qii->column_score, 5.0);

  const CandidateQuery* qiii =
      FindByColumnA(result_.candidates, "Orders", "Clerk", 5);
  ASSERT_NE(qiii, nullptr);
  EXPECT_DOUBLE_EQ(qiii->column_score, 7.0);
}

// The flagship query (i) (A -> Customer.CustName) fully contains the
// spreadsheet: row score = column score = 7.
TEST_F(PaperExamplesTest, FlagshipQueryFullContainment) {
  const CandidateQuery* qi =
      FindByColumnA(result_.candidates, "Customer", "CustName", 5);
  ASSERT_NE(qi, nullptr);
  EXPECT_DOUBLE_EQ(qi->column_score, 7.0);
  std::vector<double> scores = RowScores(qi->query);
  EXPECT_DOUBLE_EQ(scores[0] + scores[1] + scores[2], 7.0);
  EXPECT_DOUBLE_EQ(scores[0], 3.0);
  EXPECT_DOUBLE_EQ(scores[1], 2.0);
  EXPECT_DOUBLE_EQ(scores[2], 2.0);
}

// Prop 2: the upper bound dominates the exact score for every candidate
// and every alpha.
TEST_F(PaperExamplesTest, UpperBoundDominatesExactScore) {
  for (double alpha : {0.5, 0.8, 1.0}) {
    for (const CandidateQuery& c : result_.candidates) {
      std::vector<double> rows = RowScores(c.query);
      double row_score = 0.0;
      for (double v : rows) row_score += v;
      const double score = CombineScore(row_score, c.column_score, alpha,
                                        c.query.tree().size());
      EXPECT_LE(score, c.upper_bound + 1e-9)
          << c.query.ToString(TpchIndex().db()) << " alpha=" << alpha;
    }
  }
}

// score_row <= score_col (the inequality behind Prop 2).
TEST_F(PaperExamplesTest, RowScoreBoundedByColumnScore) {
  for (const CandidateQuery& c : result_.candidates) {
    std::vector<double> rows = RowScores(c.query);
    double row_score = 0.0;
    for (double v : rows) row_score += v;
    EXPECT_LE(row_score, c.column_score + 1e-9);
  }
}

// Prop 1(i): extending a minimal query with an unbound degree-1 relation
// can only lower its score (the enumerator is right to prune those).
TEST_F(PaperExamplesTest, Prop1UnboundLeafNeverHelps) {
  const Database& db = TpchIndex().db();
  const SchemaGraph& graph = testing::TpchGraph();
  for (const CandidateQuery& c : result_.candidates) {
    if (c.query.tree().size() >= 5) continue;
    // Graft one extra unbound leaf onto some node, any edge.
    const JoinTree& tree = c.query.tree();
    for (TreeNodeId v = 0; v < tree.size() && v < 2; ++v) {
      const auto& incident = graph.IncidentEdges(tree.node(v).table);
      if (incident.empty()) continue;
      JoinTree extended = tree;
      extended.AddChild(v, graph, incident[0].edge, incident[0].dir);
      PJQuery bigger(extended, c.query.bindings());
      ASSERT_FALSE(bigger.IsMinimalShape());

      Evaluator ev(ctx_);
      EvalCounters counters;
      auto sum = [](const std::vector<double>& v) {
        double s = 0.0;
        for (double x : v) s += x;
        return s;
      };
      const double minimal_row =
          sum(ev.RowScores(c.query, nullptr, &counters));
      const double extended_row =
          sum(ev.RowScores(bigger, nullptr, &counters));
      const double minimal_score = CombineScore(
          minimal_row, c.column_score, 0.8, c.query.tree().size());
      const double extended_score = CombineScore(
          extended_row, c.column_score, 0.8, bigger.tree().size());
      EXPECT_LE(extended_score, minimal_score + 1e-9)
          << c.query.ToString(db) << " vs " << bigger.ToString(db);
    }
  }
}

TEST(ScoreModelTest, SizePenalty) {
  EXPECT_DOUBLE_EQ(SizePenalty(1), 1.0);
  EXPECT_GT(SizePenalty(2), SizePenalty(1));
  EXPECT_GT(SizePenalty(5), SizePenalty(4));
  EXPECT_DOUBLE_EQ(SizePenalty(3), 1.0 + std::log(1.0 + std::log(3.0)));
}

TEST(ScoreModelTest, CombineScoreWeighting) {
  // alpha = 1 ignores column score; alpha = 0 ignores row score.
  EXPECT_DOUBLE_EQ(CombineScore(4.0, 8.0, 1.0, 1), 4.0);
  EXPECT_DOUBLE_EQ(CombineScore(4.0, 8.0, 0.0, 1), 8.0);
  EXPECT_DOUBLE_EQ(CombineScore(4.0, 8.0, 0.5, 1), 6.0);
}

TEST(ScoreContextTest, CandidateColumnsForFig2a) {
  const IndexSet& index = TpchIndex();
  ExampleSpreadsheet sheet = Fig2aSheet(index);
  ScoreContext ctx(index, sheet, ScoreParams{});

  // Sec 4.1.1: column A's candidates are Customer.CustName, Orders.Clerk
  // and Supplier.SuppName; B -> Nation.NatName; C -> Part.PartName.
  auto names = [&](int32_t es_col) {
    std::vector<std::string> out;
    for (int32_t gid : ctx.CandidateColumns(es_col)) {
      out.push_back(
          index.db().ColumnName(index.column_ids().FromGid(gid)));
    }
    std::sort(out.begin(), out.end());
    return out;
  };
  EXPECT_EQ(names(0),
            (std::vector<std::string>{"Customer.CustName", "Orders.Clerk",
                                      "Supplier.SuppName"}));
  EXPECT_EQ(names(1), (std::vector<std::string>{"Nation.NatName"}));
  EXPECT_EQ(names(2), (std::vector<std::string>{"Part.PartName"}));
}

TEST(ScoreContextTest, CellMaxPerRow) {
  const IndexSet& index = TpchIndex();
  ExampleSpreadsheet sheet = Fig2aSheet(index);
  ScoreContext ctx(index, sheet, ScoreParams{});

  const Table* cust = index.db().FindTable("Customer");
  ASSERT_NE(cust, nullptr);
  const int32_t gid = index.column_ids().Gid(
      ColumnRef{cust->id(), cust->ColumnIndex("CustName")});
  const std::vector<double>* cm = ctx.CellMax(0, gid);
  ASSERT_NE(cm, nullptr);
  // Rick, Julie, Kevin each appear in CustName.
  EXPECT_DOUBLE_EQ((*cm)[0], 1.0);
  EXPECT_DOUBLE_EQ((*cm)[1], 1.0);
  EXPECT_DOUBLE_EQ((*cm)[2], 1.0);
  EXPECT_DOUBLE_EQ(ctx.ColumnScore(0, gid), 3.0);
  EXPECT_GT(ctx.PostingCost(0, gid), 0);
}

TEST(ScoreContextTest, IdfWeightsRareTermsHigher) {
  const IndexSet& index = TpchIndex();
  ExampleSpreadsheet sheet = Fig2aSheet(index);
  ScoreParams params;
  params.use_idf = true;
  ScoreContext ctx(index, sheet, params);

  const Table* nation = index.db().FindTable("Nation");
  const int32_t gid = index.column_ids().Gid(
      ColumnRef{nation->id(), nation->ColumnIndex("NatName")});
  TermId usa = index.dict().Lookup("usa");
  ASSERT_NE(usa, kInvalidTermId);
  // idf = ln(1 + N/df) with N=3, df=1 here.
  EXPECT_NEAR(ctx.TermWeight(usa, gid), std::log(4.0), 1e-12);
}

TEST(ScoreContextTest, ExactMatchBonusAppliesOnlyOnFullCellMatch) {
  const IndexSet& index = TpchIndex();
  // "Xbox One" matches the Part cell exactly; "Xbox" alone does not.
  auto sheet = ExampleSpreadsheet::FromCells({{"Xbox One"}, {"Xbox"}},
                                             index.tokenizer());
  ASSERT_TRUE(sheet.ok());
  ScoreParams params;
  params.exact_match_bonus = 10.0;
  ScoreContext ctx(index, *sheet, params);

  const Table* part = index.db().FindTable("Part");
  const int32_t gid = index.column_ids().Gid(
      ColumnRef{part->id(), part->ColumnIndex("PartName")});
  const std::vector<double>* cm = ctx.CellMax(0, gid);
  ASSERT_NE(cm, nullptr);
  EXPECT_DOUBLE_EQ((*cm)[0], 12.0);  // 2 terms + bonus
  EXPECT_DOUBLE_EQ((*cm)[1], 1.0);   // partial match: no bonus
}

}  // namespace
}  // namespace s4
