// Differential coverage of the flat open-addressing layout: FlatMap64
// and the arena-backed SubQueryTable are pitted against reference
// chained-hash models (unordered_map + unordered_set) under randomized
// operation streams, and the budgeted cache's eviction order under the
// exact ByteSize is replayed against a reference LRU model.
#include <algorithm>
#include <cstdint>
#include <limits>
#include <list>
#include <random>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include <gtest/gtest.h>

#include "cache/flat_table.h"
#include "cache/subquery_cache.h"

namespace s4 {
namespace {

TEST(FlatMap64Test, InsertFindGrow) {
  FlatMap64 m;
  EXPECT_TRUE(m.empty());
  EXPECT_EQ(m.Find(42), FlatMap64::kNotFound);
  bool inserted = false;
  for (int64_t k = 0; k < 10000; ++k) {
    uint32_t* slot = m.FindOrInsert(k * 7 - 5000, static_cast<uint32_t>(k),
                                    &inserted);
    EXPECT_TRUE(inserted);
    EXPECT_EQ(*slot, static_cast<uint32_t>(k));
  }
  EXPECT_EQ(m.size(), 10000u);
  for (int64_t k = 0; k < 10000; ++k) {
    EXPECT_EQ(m.Find(k * 7 - 5000), static_cast<uint32_t>(k));
    EXPECT_EQ(m.Find(k * 7 - 5001), FlatMap64::kNotFound);
  }
  // Re-inserting returns the existing slot.
  uint32_t* slot = m.FindOrInsert(-5000, 999, &inserted);
  EXPECT_FALSE(inserted);
  EXPECT_EQ(*slot, 0u);
  *slot = 123;
  EXPECT_EQ(m.Find(-5000), 123u);
}

TEST(FlatMap64Test, ExtremeKeys) {
  FlatMap64 m;
  bool inserted = false;
  const int64_t keys[] = {0, -1, 1, std::numeric_limits<int64_t>::min(),
                          std::numeric_limits<int64_t>::max()};
  uint32_t v = 0;
  for (int64_t k : keys) m.FindOrInsert(k, v++, &inserted);
  v = 0;
  for (int64_t k : keys) EXPECT_EQ(m.Find(k), v++);
  EXPECT_EQ(m.Find(2), FlatMap64::kNotFound);
}

TEST(FlatMap64Test, ReserveAvoidsGrowthAndCapacityForMatches) {
  FlatMap64 m;
  m.Reserve(1000);
  const size_t cap = m.capacity();
  EXPECT_EQ(cap, FlatMap64::CapacityFor(1000));
  EXPECT_GE(cap * 3, 1000u * 4 / 4 * 4);  // holds 1000 at 3/4 load
  bool inserted = false;
  for (int64_t k = 0; k < 1000; ++k) m.FindOrInsert(k, 0, &inserted);
  EXPECT_EQ(m.capacity(), cap);  // no rehash happened
  EXPECT_EQ(m.ByteSize(), cap * FlatMap64::kSlotBytes);
}

// Exact heap accounting including the tag array: the cache budget in
// SubQueryCache (and EstimateTableBytes in the cost model) multiply
// CapacityFor by kSlotBytes, so kSlotBytes must cover every parallel
// array byte — 8 key + 4 value + 1 tag per slot, allocated exactly.
TEST(FlatMap64Test, ByteSizeCoversTagArrayExactly) {
  FlatMap64 m;
  EXPECT_EQ(m.ByteSize(), 0u);
  EXPECT_EQ(FlatMap64::kSlotBytes,
            sizeof(int64_t) + sizeof(uint32_t) + sizeof(uint8_t));
  bool inserted = false;
  for (int64_t k = 0; k < 5000; ++k) {
    m.FindOrInsert(k * 13 + 1, 1, &inserted);
    EXPECT_EQ(m.ByteSize(), m.capacity() * FlatMap64::kSlotBytes);
  }
  for (size_t n : {size_t{0}, size_t{1}, size_t{11}, size_t{12}, size_t{13},
                   size_t{1000}, size_t{100000}}) {
    FlatMap64 r;
    r.Reserve(n);
    EXPECT_EQ(r.capacity(), FlatMap64::CapacityFor(n)) << n;
    EXPECT_EQ(r.ByteSize(), FlatMap64::CapacityFor(n) * FlatMap64::kSlotBytes)
        << n;
  }
}

// Randomized differential coverage of the batched probe path: FindBatch
// must return exactly what per-key Find returns — across key
// distributions (clustered, extreme, missing), zero-score sentinel rows,
// and growth during interleaved inserts — on whichever backend
// (SIMD or the S4_DISABLE_SIMD scalar fallback) this binary compiled in.
TEST(FlatMap64Test, FindBatchMatchesFindDifferential) {
  for (uint64_t seed = 1; seed <= 6; ++seed) {
    std::mt19937_64 rng(seed);
    FlatMap64 m;
    std::vector<int64_t> inserted_keys;
    const int64_t key_space = 1 + static_cast<int64_t>(rng() % 100000);
    const int64_t extremes[] = {0, -1, 1,
                                std::numeric_limits<int64_t>::min(),
                                std::numeric_limits<int64_t>::max()};
    bool inserted = false;
    for (int round = 0; round < 40; ++round) {
      // Insert a burst (crossing growth boundaries as the table fills).
      const int burst = 1 + static_cast<int>(rng() % 500);
      for (int i = 0; i < burst; ++i) {
        const int64_t k = (rng() % 16 == 0)
                              ? extremes[rng() % 5]
                              : static_cast<int64_t>(rng() % key_space) * 7 -
                                    key_space;
        m.FindOrInsert(k, static_cast<uint32_t>(rng() % 1000), &inserted);
        if (inserted) inserted_keys.push_back(k);
      }
      // Probe a mixed batch: present keys, absent keys, extremes, and
      // awkward batch lengths (0, 1, partial and multiple chunks).
      const size_t n = rng() % 70;
      std::vector<int64_t> probes(n);
      for (size_t i = 0; i < n; ++i) {
        switch (rng() % 3) {
          case 0:
            probes[i] = inserted_keys[rng() % inserted_keys.size()];
            break;
          case 1:
            probes[i] = static_cast<int64_t>(rng());  // almost surely absent
            break;
          default:
            probes[i] = extremes[rng() % 5];
        }
      }
      std::vector<uint32_t> got(n, 12345);
      m.FindBatch(probes.data(), n, got.data());
      for (size_t i = 0; i < n; ++i) {
        ASSERT_EQ(got[i], m.Find(probes[i])) << "seed " << seed << " round "
                                             << round << " probe " << i;
      }
    }
  }
  // Empty-table batch: everything misses.
  FlatMap64 empty;
  int64_t keys[3] = {1, -2, 3};
  uint32_t out[3];
  empty.FindBatch(keys, 3, out);
  for (uint32_t v : out) EXPECT_EQ(v, FlatMap64::kNotFound);
}

// SubQueryTable::FindBatch must agree with Find on pointers-and-existence
// semantics, including kZeroRow sentinel keys (exists, null row).
TEST(SubQueryTableTest, FindBatchMatchesFindWithZeroSentinels) {
  for (uint64_t seed = 1; seed <= 4; ++seed) {
    std::mt19937_64 rng(seed);
    SubQueryTable table;
    table.num_es_rows = 1 + static_cast<int32_t>(rng() % 7);
    const int64_t key_space = 1 + static_cast<int64_t>(rng() % 5000);
    bool fresh = false;
    for (int op = 0; op < 8000; ++op) {
      const int64_t key = static_cast<int64_t>(rng() % key_space) * 11 - 99;
      if (rng() % 4 == 0) {
        table.InsertZero(key);
      } else {
        table.UpsertScored(key, &fresh)[rng() % table.num_es_rows] += 1.0;
      }
    }
    std::vector<int64_t> probes(333);
    for (int64_t& p : probes) {
      p = static_cast<int64_t>(rng() % (2 * key_space)) * 11 - 99;
    }
    std::vector<const double*> rows(probes.size());
    // std::vector<bool> has no data(); collect through a byte array.
    std::vector<char> exists_raw(probes.size());
    table.FindBatch(probes.data(), probes.size(), rows.data(),
                    reinterpret_cast<bool*>(exists_raw.data()));
    for (size_t i = 0; i < probes.size(); ++i) {
      bool e = false;
      const double* r = table.Find(probes[i], &e);
      ASSERT_EQ(static_cast<bool>(exists_raw[i]), e) << "probe " << i;
      ASSERT_EQ(rows[i], r) << "probe " << i;
    }
  }
}

TEST(FlatMap64Test, ForEachVisitsEveryEntryOnce) {
  FlatMap64 m;
  std::unordered_map<int64_t, uint32_t> model;
  std::mt19937_64 rng(7);
  bool inserted = false;
  for (int i = 0; i < 5000; ++i) {
    const int64_t k = static_cast<int64_t>(rng() % 3000) - 1500;
    const uint32_t v = static_cast<uint32_t>(rng() % 1000);
    uint32_t* slot = m.FindOrInsert(k, v, &inserted);
    EXPECT_EQ(inserted, model.emplace(k, v).second);
    EXPECT_EQ(*slot, model.at(k));
  }
  std::unordered_map<int64_t, uint32_t> seen;
  m.ForEach([&](int64_t k, uint32_t v) { EXPECT_TRUE(seen.emplace(k, v).second); });
  EXPECT_EQ(seen, model);
}

// Reference model of the legacy SubQueryTable layout.
struct LegacyModel {
  int32_t num_es_rows = 0;
  std::unordered_map<int64_t, std::vector<double>> scored;
  std::unordered_set<int64_t> zero;

  const std::vector<double>* Find(int64_t key, bool* exists) const {
    auto it = scored.find(key);
    if (it != scored.end()) {
      *exists = true;
      return &it->second;
    }
    *exists = zero.count(key) > 0;
    return nullptr;
  }
};

// Randomized differential test: the flat-arena table must agree with the
// chained-hash reference on every operation's outcome, on Find existence
// semantics, on iteration, and ByteSize must cover the malloc'd payload.
TEST(SubQueryTableDifferentialTest, MatchesReferenceModel) {
  for (uint64_t seed = 1; seed <= 8; ++seed) {
    std::mt19937_64 rng(seed);
    const int32_t es_rows = 1 + static_cast<int32_t>(rng() % 20);
    SubQueryTable flat;
    flat.num_es_rows = es_rows;
    LegacyModel model;
    model.num_es_rows = es_rows;

    const int64_t key_space = 1 + static_cast<int64_t>(rng() % 4000);
    for (int op = 0; op < 20000; ++op) {
      const int64_t key = static_cast<int64_t>(rng() % key_space) * 31 - 777;
      switch (rng() % 4) {
        case 0: {  // scored upsert with max-merge, like the emit kernel
          const int32_t t = static_cast<int32_t>(rng() % es_rows);
          const double w =
              static_cast<double>(1 + rng() % 1000) / 64.0;
          bool fresh = false;
          double* row = flat.UpsertScored(key, &fresh);
          auto [it, inserted] = model.scored.try_emplace(key);
          if (inserted) {
            it->second.assign(es_rows, 0.0);
            model.zero.erase(key);
          }
          // A fresh arena row appears exactly when the key was not yet
          // scored (brand new or promoted from the zero set).
          EXPECT_EQ(fresh, inserted) << "key " << key;
          it->second[t] = std::max(it->second[t], w);
          row[t] = std::max(row[t], w);
          break;
        }
        case 1: {  // zero insert
          const bool flat_new = flat.InsertZero(key);
          const bool model_new = model.scored.find(key) == model.scored.end()
                                     ? model.zero.insert(key).second
                                     : false;
          EXPECT_EQ(flat_new, model_new) << "key " << key;
          break;
        }
        default: {  // probe (2x weight: probes dominate the hot path)
          bool fe = false;
          bool me = false;
          const double* fr = flat.Find(key, &fe);
          const std::vector<double>* mr = model.Find(key, &me);
          ASSERT_EQ(fe, me) << "key " << key;
          ASSERT_EQ(fr != nullptr, mr != nullptr) << "key " << key;
          if (fr != nullptr) {
            for (int32_t t = 0; t < es_rows; ++t) {
              ASSERT_DOUBLE_EQ(fr[t], (*mr)[t]) << "key " << key;
            }
          }
        }
      }
    }

    // Cardinalities and iteration agree with the model.
    EXPECT_EQ(flat.NumKeys(),
              static_cast<int64_t>(model.scored.size() + model.zero.size()));
    EXPECT_EQ(flat.NumScored(), static_cast<int64_t>(model.scored.size()));
    EXPECT_EQ(flat.NumZero(), static_cast<int64_t>(model.zero.size()));
    std::unordered_set<int64_t> keys_seen;
    flat.ForEachKey([&](int64_t k) { EXPECT_TRUE(keys_seen.insert(k).second); });
    EXPECT_EQ(keys_seen.size(), model.scored.size() + model.zero.size());
    for (const auto& [k, v] : model.scored) {
      (void)v;
      EXPECT_TRUE(keys_seen.count(k) > 0);
    }
    for (int64_t k : model.zero) EXPECT_TRUE(keys_seen.count(k) > 0);
    int64_t scored_seen = 0;
    flat.ForEachScored([&](int64_t k, const double* row) {
      ++scored_seen;
      const auto it = model.scored.find(k);
      ASSERT_NE(it, model.scored.end());
      for (int32_t t = 0; t < es_rows; ++t) {
        ASSERT_DOUBLE_EQ(row[t], it->second[t]);
      }
    });
    EXPECT_EQ(scored_seen, flat.NumScored());

    // Exact accounting: ByteSize covers every malloc'd payload byte.
    const size_t payload =
        flat.keys.capacity() * FlatMap64::kSlotBytes +
        flat.arena.capacity() * sizeof(double);
    EXPECT_GE(flat.ByteSize(), payload);
    EXPECT_EQ(flat.ByteSize(), sizeof(SubQueryTable) + payload);
    flat.ShrinkToFit();
    EXPECT_EQ(flat.arena.capacity(), flat.arena.size());
  }
}

// Reference single-shard LRU model for the budgeted cache.
class LruModel {
 public:
  explicit LruModel(size_t budget) : budget_(budget) {}

  bool Add(const std::string& key, size_t bytes) {
    Remove(key);
    if (bytes > budget_) return false;
    while (used_ + bytes > budget_) {
      if (order_.empty()) return false;
      Remove(order_.back());
      ++evictions_;
    }
    order_.push_front(key);
    entries_[key] = bytes;
    used_ += bytes;
    return true;
  }

  bool Get(const std::string& key) {
    if (entries_.find(key) == entries_.end()) return false;
    order_.remove(key);
    order_.push_front(key);
    return true;
  }

  void Remove(const std::string& key) {
    auto it = entries_.find(key);
    if (it == entries_.end()) return;
    used_ -= it->second;
    order_.remove(key);
    entries_.erase(it);
  }

  bool Contains(const std::string& key) const {
    return entries_.count(key) > 0;
  }
  size_t used() const { return used_; }
  int64_t evictions() const { return evictions_; }
  const std::unordered_map<std::string, size_t>& entries() const {
    return entries_;
  }

 private:
  size_t budget_;
  size_t used_ = 0;
  int64_t evictions_ = 0;
  std::list<std::string> order_;  // front = most recent
  std::unordered_map<std::string, size_t> entries_;
};

std::shared_ptr<SubQueryTable> TableWithKeys(int32_t keys, int32_t es_rows) {
  auto t = std::make_shared<SubQueryTable>();
  t->num_es_rows = es_rows;
  bool fresh = false;
  for (int32_t i = 0; i < keys; ++i) {
    t->UpsertScored(i, &fresh)[0] = 1.0;
  }
  t->ShrinkToFit();
  return t;
}

// Regression: with the exact ByteSize, the single-shard cache must still
// evict in precisely the legacy global-LRU order — the serial strategies
// rely on that order for reproducibility.
TEST(CacheEvictionOrderTest, ExactByteSizePreservesLegacyLruOrder) {
  for (uint64_t seed = 1; seed <= 10; ++seed) {
    std::mt19937_64 rng(seed);
    // Tables of a few distinct sizes; budget fits a handful, forcing
    // constant eviction.
    const size_t unit = TableWithKeys(40, 4)->ByteSize();
    SubQueryCache cache(unit * 5, /*num_shards=*/1);
    LruModel model(unit * 5);
    constexpr int kKeySpace = 24;
    for (int op = 0; op < 600; ++op) {
      const std::string key =
          "k" + std::to_string(rng() % kKeySpace);
      switch (rng() % 4) {
        case 0:
        case 1: {
          const int32_t nkeys = 20 + static_cast<int32_t>(rng() % 3) * 40;
          auto table = TableWithKeys(nkeys, 4);
          EXPECT_EQ(cache.Add(key, table), model.Add(key, table->ByteSize()));
          break;
        }
        case 2:
          EXPECT_EQ(cache.Get(key) != nullptr, model.Get(key));
          break;
        default:
          cache.Remove(key);
          model.Remove(key);
      }
      ASSERT_EQ(cache.bytes_used(), model.used()) << "op " << op;
    }
    // The surviving entry sets are identical — same victims, same order.
    for (int i = 0; i < kKeySpace; ++i) {
      const std::string key = "k" + std::to_string(i);
      EXPECT_EQ(cache.Contains(key), model.Contains(key)) << key;
    }
    EXPECT_EQ(cache.stats().evictions, model.evictions());
    EXPECT_EQ(cache.NumEntries(),
              static_cast<int64_t>(model.entries().size()));
  }
}

}  // namespace
}  // namespace s4
