// Common substrate tests: Status/StatusOr, string utils, RNG, top-k
// heap, table printer.
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/hash_util.h"
#include "common/latency_histogram.h"
#include "common/stop_token.h"
#include "common/rng.h"
#include "common/status.h"
#include "common/string_util.h"
#include "common/table_printer.h"
#include "common/topk_heap.h"

namespace s4 {
namespace {

TEST(StatusTest, OkAndErrors) {
  EXPECT_TRUE(Status::OK().ok());
  EXPECT_EQ(Status::OK().ToString(), "OK");
  Status s = Status::NotFound("thing");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kNotFound);
  EXPECT_EQ(s.ToString(), "NotFound: thing");
  EXPECT_EQ(s, Status::NotFound("thing"));
  EXPECT_FALSE(s == Status::NotFound("other"));
}

Status Fails() { return Status::Internal("boom"); }
Status Propagates() {
  S4_RETURN_IF_ERROR(Fails());
  return Status::OK();
}

TEST(StatusTest, ReturnIfErrorMacro) {
  EXPECT_EQ(Propagates().code(), StatusCode::kInternal);
}

TEST(StatusOrTest, ValueAndError) {
  StatusOr<int> v = 42;
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, 42);
  StatusOr<int> e = Status::OutOfRange("x");
  EXPECT_FALSE(e.ok());
  EXPECT_EQ(e.status().code(), StatusCode::kOutOfRange);

  StatusOr<std::string> s = std::string("hi");
  EXPECT_EQ(s->size(), 2u);
  std::string moved = std::move(s).value();
  EXPECT_EQ(moved, "hi");
}

TEST(StringUtilTest, Basics) {
  EXPECT_EQ(ToLowerAscii("AbC1"), "abc1");
  EXPECT_EQ(SplitAndTrim("a, b ,,c", ","),
            (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(Join({"a", "b"}, "-"), "a-b");
  EXPECT_EQ(StripWhitespace("  x y  "), "x y");
  EXPECT_TRUE(IsAlphaNumeric("abc123"));
  EXPECT_FALSE(IsAlphaNumeric("a b"));
  EXPECT_FALSE(IsAlphaNumeric(""));
  EXPECT_EQ(StrFormat("%d-%s", 7, "x"), "7-x");
}

TEST(HashUtilTest, Fingerprint) {
  EXPECT_EQ(FingerprintString("abc"), FingerprintString("abc"));
  EXPECT_NE(FingerprintString("abc"), FingerprintString("abd"));
  uint64_t seed = 1;
  HashCombine(seed, 42);
  EXPECT_NE(seed, 1u);
}

TEST(RngTest, Deterministic) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
  Rng c(124);
  EXPECT_NE(a.Next(), c.Next());
}

TEST(RngTest, UniformBounds) {
  Rng rng(5);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.Uniform(7), 7u);
    int64_t v = rng.UniformRange(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, ShuffleIsPermutation) {
  Rng rng(9);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<int> orig = v;
  rng.Shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, orig);
}

TEST(ZipfSamplerTest, HeadHeavierThanTail) {
  Rng rng(7);
  ZipfSampler zipf(100, 1.0);
  std::vector<int> counts(100, 0);
  for (int i = 0; i < 20000; ++i) ++counts[zipf.Sample(rng)];
  EXPECT_GT(counts[0], counts[50] * 2);
  EXPECT_GT(counts[0], 0);
}

TEST(TopKHeapTest, KeepsHighest) {
  TopKHeap<std::string> heap(2);
  heap.Offer(1.0, "a");
  heap.Offer(3.0, "b");
  heap.Offer(2.0, "c");
  EXPECT_TRUE(heap.Full());
  EXPECT_DOUBLE_EQ(heap.KthScore(), 2.0);
  auto sorted = heap.TakeSortedDescending();
  ASSERT_EQ(sorted.size(), 2u);
  EXPECT_EQ(sorted[0].second, "b");
  EXPECT_EQ(sorted[1].second, "c");
}

TEST(TopKHeapTest, TieBreakByInsertionOrder) {
  TopKHeap<int> heap(2);
  heap.Offer(1.0, 1);
  heap.Offer(1.0, 2);
  heap.Offer(1.0, 3);  // tie: earlier entries win
  auto sorted = heap.TakeSortedDescending();
  EXPECT_EQ(sorted[0].second, 1);
  EXPECT_EQ(sorted[1].second, 2);
}

TEST(TopKHeapTest, TieBreakByCanonicalKey) {
  // With keys, boundary ties resolve by key ascending regardless of
  // offer order — the total order the distributed merge relies on.
  TopKHeap<int> heap(2);
  heap.Offer(1.0, 1, "zz");
  heap.Offer(1.0, 2, "mm");
  heap.Offer(1.0, 3, "aa");  // later offer, smaller key: displaces "zz"
  auto sorted = heap.TakeSortedDescending();
  ASSERT_EQ(sorted.size(), 2u);
  EXPECT_EQ(sorted[0].second, 3);
  EXPECT_EQ(sorted[1].second, 2);
}

TEST(TopKHeapTest, KthScoreBeforeFull) {
  TopKHeap<int> heap(3);
  heap.Offer(5.0, 1);
  EXPECT_FALSE(heap.Full());
  EXPECT_LT(heap.KthScore(), -1e100);
}

TEST(TopKHeapTest, ZeroK) {
  TopKHeap<int> heap(0);
  heap.Offer(1.0, 1);
  EXPECT_EQ(heap.TakeSortedDescending().size(), 0u);
}

TEST(TablePrinterTest, AlignsColumns) {
  TablePrinter tp({"name", "value"});
  tp.AddRow({"x", TablePrinter::Num(1.5)});
  tp.AddRow({"longer", TablePrinter::Int(42)});
  std::string s = tp.ToString();
  EXPECT_NE(s.find("| name   |"), std::string::npos);
  EXPECT_NE(s.find("1.50"), std::string::npos);
  EXPECT_NE(s.find("42"), std::string::npos);
  // Short rows are padded.
  TablePrinter tp2({"a", "b"});
  tp2.AddRow({"only"});
  EXPECT_NE(tp2.ToString().find("only"), std::string::npos);
}

TEST(StopTokenTest, CancelAndDeadline) {
  StopToken t;
  EXPECT_FALSE(t.ShouldStop());
  t.Cancel();
  EXPECT_TRUE(t.cancelled());
  EXPECT_TRUE(t.ShouldStop());

  StopToken expired(-1.0);
  EXPECT_TRUE(expired.deadline_expired());
  EXPECT_FALSE(expired.cancelled());

  StopToken future(3600.0);
  EXPECT_FALSE(future.ShouldStop());
}

TEST(LatencyHistogramTest, EmptySnapshot) {
  LatencyHistogram h;
  LatencyHistogram::Snapshot s = h.snapshot();
  EXPECT_EQ(s.total, 0);
  EXPECT_EQ(s.PercentileSeconds(0.5), 0.0);
  EXPECT_EQ(s.MeanSeconds(), 0.0);
}

TEST(LatencyHistogramTest, PercentilesWithinBucketResolution) {
  LatencyHistogram h;
  // 100 samples at 1 ms, 10 at 100 ms: p50 is in the 1 ms bucket, p99
  // in the 100 ms bucket. Geometric buckets grow by 3.9%, so an answer
  // within 5% of the true value proves the sample landed in the right
  // bucket.
  for (int i = 0; i < 100; ++i) h.Record(1e-3);
  for (int i = 0; i < 10; ++i) h.Record(0.1);
  LatencyHistogram::Snapshot s = h.snapshot();
  EXPECT_EQ(s.total, 110);
  EXPECT_NEAR(s.PercentileSeconds(0.50), 1e-3, 5e-5);
  EXPECT_NEAR(s.PercentileSeconds(0.99), 0.1, 5e-3);
  EXPECT_NEAR(s.MeanSeconds(), (100 * 1e-3 + 10 * 0.1) / 110.0, 1e-12);
}

TEST(LatencyHistogramTest, ExtremesClampToEdgeBuckets) {
  LatencyHistogram h;
  h.Record(0.0);     // below the first bucket
  h.Record(-1.0);    // negative clamps too
  h.Record(1e12);    // far beyond the last bucket
  LatencyHistogram::Snapshot s = h.snapshot();
  EXPECT_EQ(s.total, 3);
  EXPECT_GT(s.PercentileSeconds(1.0), 0.0);
}

TEST(LatencyHistogramTest, ConcurrentRecordsAllCounted) {
  LatencyHistogram h;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 5000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&h, t] {
      for (int i = 0; i < kPerThread; ++i) {
        h.Record(1e-5 * static_cast<double>(t + 1));
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(h.count(), kThreads * kPerThread);
}

TEST(LatencyHistogramTest, MergeIntoEmptySnapshot) {
  LatencyHistogram h;
  for (int i = 0; i < 10; ++i) h.Record(2e-3);
  LatencyHistogram::Snapshot merged;  // default-constructed: no buckets
  merged.Merge(h.snapshot());
  EXPECT_EQ(merged.total, 10);
  EXPECT_NEAR(merged.MeanSeconds(), 2e-3, 1e-4);
  EXPECT_NEAR(merged.PercentileSeconds(0.5), 2e-3, 1e-4);
}

TEST(LatencyHistogramTest, MergeOfEmptyIsIdentity) {
  LatencyHistogram h;
  h.Record(5e-3);
  LatencyHistogram::Snapshot s = h.snapshot();
  const double p50_before = s.PercentileSeconds(0.5);
  s.Merge(LatencyHistogram::Snapshot{});  // merging empty changes nothing
  EXPECT_EQ(s.total, 1);
  EXPECT_EQ(s.PercentileSeconds(0.5), p50_before);
  EXPECT_NEAR(s.max_seconds, 5e-3, 1e-9);
}

TEST(LatencyHistogramTest, MergePartialSnapshotsSumsAndKeepsMax) {
  LatencyHistogram a;
  LatencyHistogram b;
  for (int i = 0; i < 100; ++i) a.Record(1e-3);
  for (int i = 0; i < 100; ++i) b.Record(4e-3);
  b.Record(0.25);  // the true max lives only in b
  LatencyHistogram::Snapshot merged = a.snapshot();
  merged.Merge(b.snapshot());
  EXPECT_EQ(merged.total, 201);
  // Max propagates exactly, not bucket-quantized.
  EXPECT_DOUBLE_EQ(merged.max_seconds, 0.25);
  EXPECT_NEAR(merged.sum_seconds, 100 * 1e-3 + 100 * 4e-3 + 0.25, 1e-6);
  // Rank 101 of 201 falls in the 4 ms population.
  EXPECT_NEAR(merged.PercentileSeconds(0.5), 4e-3, 2e-4);
}

TEST(LatencyHistogramTest, HighQuantileOnTinySample) {
  // p99.9 of a 3-sample histogram must return the largest bucket, not
  // read past the counts or interpolate into emptiness.
  LatencyHistogram h;
  h.Record(1e-3);
  h.Record(2e-3);
  h.Record(8e-3);
  LatencyHistogram::Snapshot s = h.snapshot();
  EXPECT_NEAR(s.PercentileSeconds(0.999), 8e-3, 4e-4);
  EXPECT_NEAR(s.PercentileSeconds(1.0), 8e-3, 4e-4);
  // A single sample: every quantile is that sample's bucket.
  LatencyHistogram one;
  one.Record(3e-3);
  LatencyHistogram::Snapshot os = one.snapshot();
  EXPECT_NEAR(os.PercentileSeconds(0.001), 3e-3, 2e-4);
  EXPECT_NEAR(os.PercentileSeconds(0.999), 3e-3, 2e-4);
}

}  // namespace
}  // namespace s4
