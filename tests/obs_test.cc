// Observability layer tests: striped counters, gauges, histograms, the
// process-wide registry and its serializers, per-search trace spans,
// and the end-to-end wiring through a real FASTTOPK search.
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "obs/metrics.h"
#include "obs/profile.h"
#include "obs/trace.h"
#include "strategy/strategy.h"
#include "tests/test_util.h"

namespace s4 {
namespace {

using obs::Counter;
using obs::Gauge;
using obs::Histogram;
using obs::MetricsRegistry;
using obs::MetricsSnapshot;
using obs::SpanTimer;
using obs::Trace;
using testing::Fig2aSheet;
using testing::TpchGraph;
using testing::TpchIndex;

TEST(MetricsTest, CounterBasics) {
  Counter c;
  EXPECT_EQ(c.Value(), 0);
  c.Increment();
  c.Add(41);
  EXPECT_EQ(c.Value(), 42);
  c.Add(-2);
  EXPECT_EQ(c.Value(), 40);
}

TEST(MetricsTest, ConcurrentCounterAdds) {
  Counter c;
  constexpr int kThreads = 8;
  constexpr int kAddsPerThread = 10000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&c] {
      for (int i = 0; i < kAddsPerThread; ++i) c.Increment();
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(c.Value(), kThreads * kAddsPerThread);
}

TEST(MetricsTest, GaugeSetAndAdd) {
  Gauge g;
  EXPECT_EQ(g.Value(), 0);
  g.Set(7);
  EXPECT_EQ(g.Value(), 7);
  g.Add(-3);
  EXPECT_EQ(g.Value(), 4);
}

TEST(MetricsTest, HistogramObserve) {
  Histogram h;
  for (int i = 1; i <= 100; ++i) h.Observe(i * 1e-3);
  auto snap = h.Snapshot();
  EXPECT_EQ(snap.total, 100);
  EXPECT_NEAR(snap.max_seconds, 0.1, 1e-9);
  EXPECT_GT(snap.PercentileSeconds(0.5), 0.0);
}

TEST(MetricsTest, RegistryReturnsStableReferences) {
  MetricsRegistry reg;
  Counter& a = reg.GetCounter("test_counter");
  Counter& b = reg.GetCounter("test_counter");
  EXPECT_EQ(&a, &b);
  a.Add(5);
  EXPECT_EQ(b.Value(), 5);
  Gauge& g1 = reg.GetGauge("test_gauge");
  Gauge& g2 = reg.GetGauge("test_gauge");
  EXPECT_EQ(&g1, &g2);
  Histogram& h1 = reg.GetHistogram("test_hist");
  Histogram& h2 = reg.GetHistogram("test_hist");
  EXPECT_EQ(&h1, &h2);
}

TEST(MetricsTest, ConcurrentRegistryAccess) {
  MetricsRegistry reg;
  constexpr int kThreads = 8;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&reg, t] {
      // Mix registration of fresh names with hot increments of a shared
      // one while another thread snapshots — the tsan target for the
      // registry's locking discipline.
      for (int i = 0; i < 200; ++i) {
        reg.GetCounter("shared_total").Increment();
        reg.GetCounter("per_thread_" + std::to_string(t)).Increment();
        if (i % 50 == 0) (void)reg.Snapshot();
      }
    });
  }
  for (auto& th : threads) th.join();
  MetricsSnapshot snap = reg.Snapshot();
  EXPECT_EQ(snap.Value("shared_total"), kThreads * 200);
  for (int t = 0; t < kThreads; ++t) {
    EXPECT_EQ(snap.Value("per_thread_" + std::to_string(t)), 200);
  }
}

TEST(MetricsTest, SnapshotSortedAndQueryable) {
  MetricsRegistry reg;
  reg.GetCounter("zebra").Add(1);
  reg.GetCounter("apple").Add(2);
  reg.GetGauge("mango").Set(3);
  MetricsSnapshot snap = reg.Snapshot();
  ASSERT_EQ(snap.entries.size(), 3u);
  EXPECT_EQ(snap.entries[0].name, "apple");
  EXPECT_EQ(snap.entries[1].name, "mango");
  EXPECT_EQ(snap.entries[2].name, "zebra");
  EXPECT_EQ(snap.Value("apple"), 2);
  EXPECT_EQ(snap.Value("mango"), 3);
  EXPECT_EQ(snap.Value("missing"), 0);
  EXPECT_EQ(snap.Find("missing"), nullptr);
  ASSERT_NE(snap.Find("zebra"), nullptr);
  EXPECT_EQ(snap.Find("zebra")->kind, MetricsSnapshot::Kind::kCounter);
  EXPECT_EQ(snap.Find("mango")->kind, MetricsSnapshot::Kind::kGauge);
}

TEST(MetricsTest, PrometheusText) {
  MetricsRegistry reg;
  reg.GetCounter("requests_total").Add(3);
  reg.GetGauge("queue_depth").Set(2);
  reg.GetHistogram("latency_seconds").Observe(0.25);
  std::string text = reg.Snapshot().ToPrometheusText();
  EXPECT_NE(text.find("# TYPE requests_total counter"), std::string::npos);
  EXPECT_NE(text.find("requests_total 3"), std::string::npos);
  EXPECT_NE(text.find("# TYPE queue_depth gauge"), std::string::npos);
  EXPECT_NE(text.find("queue_depth 2"), std::string::npos);
  EXPECT_NE(text.find("# TYPE latency_seconds summary"), std::string::npos);
  EXPECT_NE(text.find("latency_seconds{quantile=\"0.5\"}"),
            std::string::npos);
  EXPECT_NE(text.find("latency_seconds_count 1"), std::string::npos);
}

TEST(MetricsTest, SnapshotJson) {
  MetricsRegistry reg;
  reg.GetCounter("hits_total").Add(9);
  reg.GetHistogram("wait_seconds").Observe(0.5);
  std::string json = reg.Snapshot().ToJson();
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
  EXPECT_NE(json.find("\"metrics\""), std::string::npos);
  EXPECT_NE(json.find("\"hits_total\""), std::string::npos);
  EXPECT_NE(json.find("\"counter\""), std::string::npos);
  EXPECT_NE(json.find("\"wait_seconds\""), std::string::npos);
  EXPECT_NE(json.find("\"count\":1"), std::string::npos);
}

TEST(MetricsTest, JsonEscaping) {
  EXPECT_EQ(obs::JsonEscape("plain"), "plain");
  EXPECT_EQ(obs::JsonEscape("a\"b\\c"), "a\\\"b\\\\c");
  EXPECT_EQ(obs::JsonEscape("line\nbreak"), "line\\nbreak");
}

TEST(TraceTest, SpanAndInstantRecording) {
  Trace trace("unit");
  auto t0 = Trace::Clock::now();
  trace.AddSpan("test", "first_span", t0, t0 + std::chrono::microseconds(50));
  trace.AddInstant("test", "a_marker");
  EXPECT_EQ(trace.NumSpans(), 2u);
  EXPECT_TRUE(trace.HasSpan("first_span"));
  EXPECT_TRUE(trace.HasSpan("a_marker"));
  EXPECT_FALSE(trace.HasSpan("absent"));
}

TEST(TraceTest, SpanTimerDisabledIsNoop) {
  SpanTimer timer(nullptr, "test", "ignored");
  EXPECT_FALSE(timer.enabled());
  timer.AddArg("k", "v");  // must not crash or allocate into a trace
}

TEST(TraceTest, SpanTimerRecordsOnDestruction) {
  Trace trace("unit");
  {
    SpanTimer timer(&trace, "test", "scoped_work");
    EXPECT_TRUE(timer.enabled());
    timer.AddArg("items", "3");
  }
  EXPECT_EQ(trace.NumSpans(), 1u);
  EXPECT_TRUE(trace.HasSpan("scoped_work"));
  std::string json = trace.ToChromeJson();
  EXPECT_NE(json.find("\"items\":\"3\""), std::string::npos);
}

TEST(TraceTest, ChromeJsonShape) {
  Trace trace("shape");
  trace.set_request_id(77);
  auto t0 = Trace::Clock::now();
  trace.AddSpan("cat", "work", t0, t0 + std::chrono::microseconds(10));
  trace.AddInstant("cat", "tick");
  std::string json = trace.ToChromeJson();
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);
  EXPECT_NE(json.find("\"pid\":1"), std::string::npos);
  EXPECT_NE(json.find("\"request_id\":\"77\""), std::string::npos);
}

TEST(TraceTest, ExportNormalizesPreEpochTimestamps) {
  // Frame-decode spans are recorded against a trace created *after* the
  // decode happened, so their start precedes the trace epoch. The
  // export must shift all timestamps so none is negative.
  Trace trace("norm");
  auto epoch = Trace::Clock::now();
  trace.AddSpan("net", "frame_decode", epoch - std::chrono::milliseconds(5),
                epoch - std::chrono::milliseconds(4));
  trace.AddSpan("search", "enumerate", epoch,
                epoch + std::chrono::microseconds(100));
  std::string json = trace.ToChromeJson();
  EXPECT_EQ(json.find("\"ts\":-"), std::string::npos) << json;
}

TEST(TraceTest, ConcurrentSpanRecording) {
  Trace trace("mt");
  constexpr int kThreads = 8;
  constexpr int kSpansPerThread = 500;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&trace] {
      for (int i = 0; i < kSpansPerThread; ++i) {
        SpanTimer timer(&trace, "mt", "concurrent_span");
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(trace.NumSpans(),
            static_cast<size_t>(kThreads) * kSpansPerThread);
  // Export under no contention must still be well-formed.
  std::string json = trace.ToChromeJson();
  EXPECT_NE(json.find("concurrent_span"), std::string::npos);
}

// End-to-end: a real FASTTOPK search over the TPC-H fixture with a
// trace attached must produce Stage-I/Stage-II/cache spans, and the
// global registry counters must move by the amounts the run reports.
TEST(ObsSearchTraceTest, FastTopKSearchProducesSpansAndCounters) {
  SearchOptions options;
  options.k = 3;
  options.num_threads = 1;
  Trace trace("search");
  options.trace = &trace;

  MetricsRegistry& reg = MetricsRegistry::Global();
  const int64_t searches_before = reg.Snapshot().Value("s4_searches_total");
  const int64_t evaluated_before =
      reg.Snapshot().Value("s4_candidates_evaluated_total");

  ExampleSpreadsheet sheet = Fig2aSheet(TpchIndex());
  SearchResult result =
      SearchFastTopK(TpchIndex(), TpchGraph(), sheet, options);
  ASSERT_FALSE(result.topk.empty());

  EXPECT_TRUE(trace.HasSpan("enumerate"));
  EXPECT_TRUE(trace.HasSpan("evaluate_candidate"));
  EXPECT_TRUE(trace.HasSpan("cache_probe"));
  EXPECT_GT(trace.NumSpans(), 3u);

  MetricsSnapshot after = reg.Snapshot();
  EXPECT_EQ(after.Value("s4_searches_total"), searches_before + 1);
  EXPECT_GE(after.Value("s4_candidates_evaluated_total"),
            evaluated_before + result.stats.queries_evaluated);
  EXPECT_GE(after.Value("s4_cache_probe_hits_total") +
                after.Value("s4_cache_probe_misses_total"),
            1);
}

// The multi-threaded path records spans from pool workers into the same
// trace; run it under tsan to pin the Trace mutex discipline, and check
// the counters still add up.
TEST(ObsSearchTraceTest, ParallelSearchTraceIsRaceFree) {
  SearchOptions options;
  options.k = 3;
  options.num_threads = 4;
  Trace trace("search-mt");
  options.trace = &trace;

  ExampleSpreadsheet sheet = Fig2aSheet(TpchIndex());
  SearchResult result =
      SearchFastTopK(TpchIndex(), TpchGraph(), sheet, options);
  ASSERT_FALSE(result.topk.empty());
  EXPECT_TRUE(trace.HasSpan("evaluate_candidate"));
  std::string json = trace.ToChromeJson();
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
}

// Tracing disabled (the production default) must leave the trace
// pointer untouched end to end: same results, stats still populated.
TEST(ObsSearchTraceTest, DisabledTraceMatchesEnabled) {
  SearchOptions options;
  options.k = 3;
  options.num_threads = 1;
  ExampleSpreadsheet sheet = Fig2aSheet(TpchIndex());
  SearchResult plain =
      SearchFastTopK(TpchIndex(), TpchGraph(), sheet, options);

  Trace trace("search");
  options.trace = &trace;
  SearchResult traced =
      SearchFastTopK(TpchIndex(), TpchGraph(), sheet, options);

  ASSERT_EQ(plain.topk.size(), traced.topk.size());
  for (size_t i = 0; i < plain.topk.size(); ++i) {
    EXPECT_NEAR(plain.topk[i].score, traced.topk[i].score, 1e-12);
  }
}

// --- cross-shard trace stitching (deterministic, fabricated segments) --

// Builds a two-event segment: a root span and a child nested under it.
obs::TraceSegment MakeSegment(int64_t origin_unix_us, int64_t root_ts_us) {
  obs::TraceSegment seg;
  seg.origin_unix_us = origin_unix_us;
  seg.trace_id = 77;
  obs::TraceSegment::Event root;
  root.category = "net";
  root.name = "shard_root";
  root.ts_us = root_ts_us;
  root.dur_us = 400;
  root.tid = 9;
  root.span_id = 7;
  root.parent_id = 0;  // segment root
  seg.events.push_back(root);
  obs::TraceSegment::Event child;
  child.category = "fasttopk";
  child.name = "shard_child";
  child.ts_us = root_ts_us + 100;
  child.dur_us = 200;
  child.tid = 9;
  child.span_id = 8;
  child.parent_id = 7;
  seg.events.push_back(child);
  return seg;
}

TEST(TraceStitchTest, ImportShiftsTimestampsByOriginDelta) {
  Trace trace("coordinator");
  // Two "shards" whose steady-clock epochs started 1000us and 3000us
  // after the coordinator's, each reporting an event at local ts=500.
  obs::TraceSegment a = MakeSegment(trace.origin_unix_us() + 1000, 500);
  a.events.resize(1);
  obs::TraceSegment b = MakeSegment(trace.origin_unix_us() + 3000, 500);
  b.events.resize(1);
  trace.ImportSegment(a, /*pid=*/2, "shard 0", /*parent_span_id=*/0);
  trace.ImportSegment(b, /*pid=*/3, "shard 1", /*parent_span_id=*/0);

  // On the coordinator clock the events land at 1500 and 3500 — the
  // 2000us origin delta between the shards is preserved verbatim.
  // (Export only shifts when some span starts before the trace epoch;
  // all-positive timelines keep their absolute offsets.)
  const std::string json = trace.ToChromeJson();
  EXPECT_NE(json.find("\"ts\":1500,"), std::string::npos) << json;
  EXPECT_NE(json.find("\"ts\":3500,"), std::string::npos) << json;
  EXPECT_EQ(json.find("\"ts\":-"), std::string::npos) << json;
}

TEST(TraceStitchTest, ImportRemapsSpanIdsAndReparentsRoots) {
  Trace trace("coordinator");
  const uint64_t scatter = trace.ReserveSpanId();
  obs::TraceSegment seg = MakeSegment(trace.origin_unix_us(), 0);
  trace.ImportSegment(seg, /*pid=*/2, "shard 0", scatter);

  ASSERT_EQ(trace.NumSpansForPid(2), 2u);
  const std::string json = trace.ToChromeJson();
  // Segment ids are remapped into the pid's range: (2<<32)|7 and
  // (2<<32)|8. The segment root is re-parented under the scatter span;
  // the child keeps its (remapped) intra-segment parent.
  const uint64_t remapped_root = (uint64_t{2} << 32) | 7u;
  const uint64_t remapped_child = (uint64_t{2} << 32) | 8u;
  EXPECT_NE(json.find("\"id\":\"" + std::to_string(remapped_root) + "\""),
            std::string::npos)
      << json;
  EXPECT_NE(json.find("\"id\":\"" + std::to_string(remapped_child) + "\""),
            std::string::npos)
      << json;
  EXPECT_NE(
      json.find("\"parent\":\"" + std::to_string(scatter) + "\""),
      std::string::npos)
      << json;
  EXPECT_NE(
      json.find("\"parent\":\"" + std::to_string(remapped_root) + "\""),
      std::string::npos)
      << json;
}

TEST(TraceStitchTest, ImportedSegmentsBecomeNamedProcesses) {
  Trace trace("coordinator");
  obs::SpanTimer local(&trace, "dist", "merge");
  obs::TraceSegment seg = MakeSegment(trace.origin_unix_us(), 0);
  trace.ImportSegment(seg, /*pid=*/5, "shard 3", 0);

  const std::string json = trace.ToChromeJson();
  EXPECT_NE(json.find("process_name"), std::string::npos) << json;
  EXPECT_NE(json.find("\"shard 3\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"pid\":5"), std::string::npos) << json;
  EXPECT_NE(json.find("\"pid\":1"), std::string::npos) << json;
}

TEST(TraceStitchTest, ExportSegmentCarriesTraceIdAndOrigin) {
  Trace trace("shard_search");
  trace.set_trace_id(4242);
  {
    obs::SpanTimer span(&trace, "net", "frame_decode");
  }
  obs::TraceSegment seg = trace.ExportSegment();
  EXPECT_EQ(seg.trace_id, 4242u);
  EXPECT_EQ(seg.origin_unix_us, trace.origin_unix_us());
  ASSERT_EQ(seg.events.size(), 1u);
  EXPECT_EQ(seg.events[0].name, "frame_decode");
  EXPECT_NE(seg.events[0].span_id, 0u);
}

// --- QueryProfile ------------------------------------------------------

TEST(ObsProfileTest, AccumulateSumsWorkNotWall) {
  obs::QueryProfile a;
  a.total_seconds = 1.0;
  a.enum_seconds = 0.25;
  a.candidates_evaluated = 10;
  a.cache_hits = 3;
  a.cache_peak_bytes = 100;
  obs::QueryProfile b;
  b.total_seconds = 2.0;
  b.enum_seconds = 0.5;
  b.candidates_evaluated = 5;
  b.cache_hits = 4;
  b.cache_peak_bytes = 50;

  a.Accumulate(b);
  EXPECT_DOUBLE_EQ(a.total_seconds, 1.0);  // wall clocks do not add
  EXPECT_DOUBLE_EQ(a.enum_seconds, 0.75);
  EXPECT_EQ(a.candidates_evaluated, 15);
  EXPECT_EQ(a.cache_hits, 7);
  EXPECT_EQ(a.cache_peak_bytes, 100u);  // max, not sum
}

TEST(ObsProfileTest, FormatProfileSectionsAndErrorBars) {
  obs::QueryProfile p;
  p.total_seconds = 0.002;
  p.candidates_evaluated = 42;
  obs::ShardProfile sp;
  sp.shard_index = 1;
  sp.enumerated = 7;
  sp.lost = true;
  p.shards.push_back(sp);

  obs::ProfileHit exact;
  exact.score = 2.5;
  exact.label = "SELECT ...";
  obs::ProfileHit approx;
  approx.score = 1.25;
  approx.interval_lo = 1.0;
  approx.interval_hi = 1.5;
  approx.interval_confidence = 0.95;
  approx.approximate = true;
  approx.label = "SELECT sampled";

  const std::string out = obs::FormatProfile(p, {exact, approx});
  EXPECT_NE(out.find("query profile"), std::string::npos);
  EXPECT_NE(out.find("total wall"), std::string::npos);
  EXPECT_NE(out.find("candidates evaluated"), std::string::npos);
  EXPECT_NE(out.find("shard 1"), std::string::npos);
  EXPECT_NE(out.find("[lost]"), std::string::npos);
  // Sampler section only appears when the sampler did something.
  EXPECT_EQ(out.find("sampler"), std::string::npos);
  // Error bars on the approximate hit, plain score on the exact one.
  EXPECT_NE(out.find("score=2.5000  SELECT ..."), std::string::npos);
  EXPECT_NE(out.find("in [1.0000, 1.5000] @ 95% conf"), std::string::npos);
}

TEST(ObsProfileTest, SearchFillsProfileReconcilingWithStats) {
  SearchOptions options;
  options.k = 3;
  options.num_threads = 1;
  ExampleSpreadsheet sheet = Fig2aSheet(TpchIndex());
  SearchResult result =
      SearchFastTopK(TpchIndex(), TpchGraph(), sheet, options);
  // FinishStats fills both views from the same accumulators — they can
  // never drift.
  EXPECT_EQ(result.profile.candidates_enumerated,
            result.stats.queries_enumerated);
  EXPECT_EQ(result.profile.candidates_evaluated,
            result.stats.queries_evaluated);
  EXPECT_EQ(result.profile.cache_hits, result.stats.cache.hits);
  EXPECT_EQ(result.profile.rows_scanned, result.stats.counters.rows_scanned);
  EXPECT_GE(result.profile.eval_seconds, 0.0);
}

}  // namespace
}  // namespace s4
