// Observability layer tests: striped counters, gauges, histograms, the
// process-wide registry and its serializers, per-search trace spans,
// and the end-to-end wiring through a real FASTTOPK search.
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "strategy/strategy.h"
#include "tests/test_util.h"

namespace s4 {
namespace {

using obs::Counter;
using obs::Gauge;
using obs::Histogram;
using obs::MetricsRegistry;
using obs::MetricsSnapshot;
using obs::SpanTimer;
using obs::Trace;
using testing::Fig2aSheet;
using testing::TpchGraph;
using testing::TpchIndex;

TEST(MetricsTest, CounterBasics) {
  Counter c;
  EXPECT_EQ(c.Value(), 0);
  c.Increment();
  c.Add(41);
  EXPECT_EQ(c.Value(), 42);
  c.Add(-2);
  EXPECT_EQ(c.Value(), 40);
}

TEST(MetricsTest, ConcurrentCounterAdds) {
  Counter c;
  constexpr int kThreads = 8;
  constexpr int kAddsPerThread = 10000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&c] {
      for (int i = 0; i < kAddsPerThread; ++i) c.Increment();
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(c.Value(), kThreads * kAddsPerThread);
}

TEST(MetricsTest, GaugeSetAndAdd) {
  Gauge g;
  EXPECT_EQ(g.Value(), 0);
  g.Set(7);
  EXPECT_EQ(g.Value(), 7);
  g.Add(-3);
  EXPECT_EQ(g.Value(), 4);
}

TEST(MetricsTest, HistogramObserve) {
  Histogram h;
  for (int i = 1; i <= 100; ++i) h.Observe(i * 1e-3);
  auto snap = h.Snapshot();
  EXPECT_EQ(snap.total, 100);
  EXPECT_NEAR(snap.max_seconds, 0.1, 1e-9);
  EXPECT_GT(snap.PercentileSeconds(0.5), 0.0);
}

TEST(MetricsTest, RegistryReturnsStableReferences) {
  MetricsRegistry reg;
  Counter& a = reg.GetCounter("test_counter");
  Counter& b = reg.GetCounter("test_counter");
  EXPECT_EQ(&a, &b);
  a.Add(5);
  EXPECT_EQ(b.Value(), 5);
  Gauge& g1 = reg.GetGauge("test_gauge");
  Gauge& g2 = reg.GetGauge("test_gauge");
  EXPECT_EQ(&g1, &g2);
  Histogram& h1 = reg.GetHistogram("test_hist");
  Histogram& h2 = reg.GetHistogram("test_hist");
  EXPECT_EQ(&h1, &h2);
}

TEST(MetricsTest, ConcurrentRegistryAccess) {
  MetricsRegistry reg;
  constexpr int kThreads = 8;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&reg, t] {
      // Mix registration of fresh names with hot increments of a shared
      // one while another thread snapshots — the tsan target for the
      // registry's locking discipline.
      for (int i = 0; i < 200; ++i) {
        reg.GetCounter("shared_total").Increment();
        reg.GetCounter("per_thread_" + std::to_string(t)).Increment();
        if (i % 50 == 0) (void)reg.Snapshot();
      }
    });
  }
  for (auto& th : threads) th.join();
  MetricsSnapshot snap = reg.Snapshot();
  EXPECT_EQ(snap.Value("shared_total"), kThreads * 200);
  for (int t = 0; t < kThreads; ++t) {
    EXPECT_EQ(snap.Value("per_thread_" + std::to_string(t)), 200);
  }
}

TEST(MetricsTest, SnapshotSortedAndQueryable) {
  MetricsRegistry reg;
  reg.GetCounter("zebra").Add(1);
  reg.GetCounter("apple").Add(2);
  reg.GetGauge("mango").Set(3);
  MetricsSnapshot snap = reg.Snapshot();
  ASSERT_EQ(snap.entries.size(), 3u);
  EXPECT_EQ(snap.entries[0].name, "apple");
  EXPECT_EQ(snap.entries[1].name, "mango");
  EXPECT_EQ(snap.entries[2].name, "zebra");
  EXPECT_EQ(snap.Value("apple"), 2);
  EXPECT_EQ(snap.Value("mango"), 3);
  EXPECT_EQ(snap.Value("missing"), 0);
  EXPECT_EQ(snap.Find("missing"), nullptr);
  ASSERT_NE(snap.Find("zebra"), nullptr);
  EXPECT_EQ(snap.Find("zebra")->kind, MetricsSnapshot::Kind::kCounter);
  EXPECT_EQ(snap.Find("mango")->kind, MetricsSnapshot::Kind::kGauge);
}

TEST(MetricsTest, PrometheusText) {
  MetricsRegistry reg;
  reg.GetCounter("requests_total").Add(3);
  reg.GetGauge("queue_depth").Set(2);
  reg.GetHistogram("latency_seconds").Observe(0.25);
  std::string text = reg.Snapshot().ToPrometheusText();
  EXPECT_NE(text.find("# TYPE requests_total counter"), std::string::npos);
  EXPECT_NE(text.find("requests_total 3"), std::string::npos);
  EXPECT_NE(text.find("# TYPE queue_depth gauge"), std::string::npos);
  EXPECT_NE(text.find("queue_depth 2"), std::string::npos);
  EXPECT_NE(text.find("# TYPE latency_seconds summary"), std::string::npos);
  EXPECT_NE(text.find("latency_seconds{quantile=\"0.5\"}"),
            std::string::npos);
  EXPECT_NE(text.find("latency_seconds_count 1"), std::string::npos);
}

TEST(MetricsTest, SnapshotJson) {
  MetricsRegistry reg;
  reg.GetCounter("hits_total").Add(9);
  reg.GetHistogram("wait_seconds").Observe(0.5);
  std::string json = reg.Snapshot().ToJson();
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
  EXPECT_NE(json.find("\"metrics\""), std::string::npos);
  EXPECT_NE(json.find("\"hits_total\""), std::string::npos);
  EXPECT_NE(json.find("\"counter\""), std::string::npos);
  EXPECT_NE(json.find("\"wait_seconds\""), std::string::npos);
  EXPECT_NE(json.find("\"count\":1"), std::string::npos);
}

TEST(MetricsTest, JsonEscaping) {
  EXPECT_EQ(obs::JsonEscape("plain"), "plain");
  EXPECT_EQ(obs::JsonEscape("a\"b\\c"), "a\\\"b\\\\c");
  EXPECT_EQ(obs::JsonEscape("line\nbreak"), "line\\nbreak");
}

TEST(TraceTest, SpanAndInstantRecording) {
  Trace trace("unit");
  auto t0 = Trace::Clock::now();
  trace.AddSpan("test", "first_span", t0, t0 + std::chrono::microseconds(50));
  trace.AddInstant("test", "a_marker");
  EXPECT_EQ(trace.NumSpans(), 2u);
  EXPECT_TRUE(trace.HasSpan("first_span"));
  EXPECT_TRUE(trace.HasSpan("a_marker"));
  EXPECT_FALSE(trace.HasSpan("absent"));
}

TEST(TraceTest, SpanTimerDisabledIsNoop) {
  SpanTimer timer(nullptr, "test", "ignored");
  EXPECT_FALSE(timer.enabled());
  timer.AddArg("k", "v");  // must not crash or allocate into a trace
}

TEST(TraceTest, SpanTimerRecordsOnDestruction) {
  Trace trace("unit");
  {
    SpanTimer timer(&trace, "test", "scoped_work");
    EXPECT_TRUE(timer.enabled());
    timer.AddArg("items", "3");
  }
  EXPECT_EQ(trace.NumSpans(), 1u);
  EXPECT_TRUE(trace.HasSpan("scoped_work"));
  std::string json = trace.ToChromeJson();
  EXPECT_NE(json.find("\"items\":\"3\""), std::string::npos);
}

TEST(TraceTest, ChromeJsonShape) {
  Trace trace("shape");
  trace.set_request_id(77);
  auto t0 = Trace::Clock::now();
  trace.AddSpan("cat", "work", t0, t0 + std::chrono::microseconds(10));
  trace.AddInstant("cat", "tick");
  std::string json = trace.ToChromeJson();
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);
  EXPECT_NE(json.find("\"pid\":1"), std::string::npos);
  EXPECT_NE(json.find("\"request_id\":\"77\""), std::string::npos);
}

TEST(TraceTest, ExportNormalizesPreEpochTimestamps) {
  // Frame-decode spans are recorded against a trace created *after* the
  // decode happened, so their start precedes the trace epoch. The
  // export must shift all timestamps so none is negative.
  Trace trace("norm");
  auto epoch = Trace::Clock::now();
  trace.AddSpan("net", "frame_decode", epoch - std::chrono::milliseconds(5),
                epoch - std::chrono::milliseconds(4));
  trace.AddSpan("search", "enumerate", epoch,
                epoch + std::chrono::microseconds(100));
  std::string json = trace.ToChromeJson();
  EXPECT_EQ(json.find("\"ts\":-"), std::string::npos) << json;
}

TEST(TraceTest, ConcurrentSpanRecording) {
  Trace trace("mt");
  constexpr int kThreads = 8;
  constexpr int kSpansPerThread = 500;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&trace] {
      for (int i = 0; i < kSpansPerThread; ++i) {
        SpanTimer timer(&trace, "mt", "concurrent_span");
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(trace.NumSpans(),
            static_cast<size_t>(kThreads) * kSpansPerThread);
  // Export under no contention must still be well-formed.
  std::string json = trace.ToChromeJson();
  EXPECT_NE(json.find("concurrent_span"), std::string::npos);
}

// End-to-end: a real FASTTOPK search over the TPC-H fixture with a
// trace attached must produce Stage-I/Stage-II/cache spans, and the
// global registry counters must move by the amounts the run reports.
TEST(ObsSearchTraceTest, FastTopKSearchProducesSpansAndCounters) {
  SearchOptions options;
  options.k = 3;
  options.num_threads = 1;
  Trace trace("search");
  options.trace = &trace;

  MetricsRegistry& reg = MetricsRegistry::Global();
  const int64_t searches_before = reg.Snapshot().Value("s4_searches_total");
  const int64_t evaluated_before =
      reg.Snapshot().Value("s4_candidates_evaluated_total");

  ExampleSpreadsheet sheet = Fig2aSheet(TpchIndex());
  SearchResult result =
      SearchFastTopK(TpchIndex(), TpchGraph(), sheet, options);
  ASSERT_FALSE(result.topk.empty());

  EXPECT_TRUE(trace.HasSpan("enumerate"));
  EXPECT_TRUE(trace.HasSpan("evaluate_candidate"));
  EXPECT_TRUE(trace.HasSpan("cache_probe"));
  EXPECT_GT(trace.NumSpans(), 3u);

  MetricsSnapshot after = reg.Snapshot();
  EXPECT_EQ(after.Value("s4_searches_total"), searches_before + 1);
  EXPECT_GE(after.Value("s4_candidates_evaluated_total"),
            evaluated_before + result.stats.queries_evaluated);
  EXPECT_GE(after.Value("s4_cache_probe_hits_total") +
                after.Value("s4_cache_probe_misses_total"),
            1);
}

// The multi-threaded path records spans from pool workers into the same
// trace; run it under tsan to pin the Trace mutex discipline, and check
// the counters still add up.
TEST(ObsSearchTraceTest, ParallelSearchTraceIsRaceFree) {
  SearchOptions options;
  options.k = 3;
  options.num_threads = 4;
  Trace trace("search-mt");
  options.trace = &trace;

  ExampleSpreadsheet sheet = Fig2aSheet(TpchIndex());
  SearchResult result =
      SearchFastTopK(TpchIndex(), TpchGraph(), sheet, options);
  ASSERT_FALSE(result.topk.empty());
  EXPECT_TRUE(trace.HasSpan("evaluate_candidate"));
  std::string json = trace.ToChromeJson();
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
}

// Tracing disabled (the production default) must leave the trace
// pointer untouched end to end: same results, stats still populated.
TEST(ObsSearchTraceTest, DisabledTraceMatchesEnabled) {
  SearchOptions options;
  options.k = 3;
  options.num_threads = 1;
  ExampleSpreadsheet sheet = Fig2aSheet(TpchIndex());
  SearchResult plain =
      SearchFastTopK(TpchIndex(), TpchGraph(), sheet, options);

  Trace trace("search");
  options.trace = &trace;
  SearchResult traced =
      SearchFastTopK(TpchIndex(), TpchGraph(), sheet, options);

  ASSERT_EQ(plain.topk.size(), traced.topk.size());
  for (size_t i = 0; i < plain.topk.size(); ++i) {
    EXPECT_NEAR(plain.topk[i].score, traced.topk[i].score, 1e-12);
  }
}

}  // namespace
}  // namespace s4
