// Edge cases of the data model and evaluator: NULL foreign keys,
// self-referencing foreign keys (relation instances / self-joins), empty
// relations, and disconnected schemas. Every evaluation is
// cross-validated against the brute-force join reference.
#include <gtest/gtest.h>

#include "enumerate/enumerator.h"
#include "strategy/strategy.h"
#include "tests/test_util.h"

namespace s4 {
namespace {

// Dept(DeptId, DeptName)
// Emp(EmpId, EmpName, DeptId -> Dept NULLABLE, MentorId -> Emp NULLABLE)
// Project(ProjId, ProjName)            -- intentionally EMPTY
// Assignment(AsgId, EmpId -> Emp, ProjId -> Project)
Database MakeEdgeDb() {
  Database db;
  Table* dept = *db.AddTable("Dept");
  EXPECT_TRUE(dept->AddColumn("DeptId", ColumnType::kInt64).ok());
  EXPECT_TRUE(dept->AddColumn("DeptName", ColumnType::kText).ok());
  EXPECT_TRUE(dept->SetPrimaryKey(0).ok());
  EXPECT_TRUE(dept->AppendRow({Value::Int(1), Value::Text("Sales")}).ok());
  EXPECT_TRUE(
      dept->AppendRow({Value::Int(2), Value::Text("Engineering")}).ok());

  Table* emp = *db.AddTable("Emp");
  EXPECT_TRUE(emp->AddColumn("EmpId", ColumnType::kInt64).ok());
  EXPECT_TRUE(emp->AddColumn("EmpName", ColumnType::kText).ok());
  EXPECT_TRUE(emp->AddColumn("DeptId", ColumnType::kInt64).ok());
  EXPECT_TRUE(emp->AddColumn("MentorId", ColumnType::kInt64).ok());
  EXPECT_TRUE(emp->SetPrimaryKey(0).ok());
  // Alice mentors Bob; Bob mentors Carol; Dave has no dept, no mentor.
  EXPECT_TRUE(emp->AppendRow({Value::Int(1), Value::Text("Alice Reed"),
                              Value::Int(1), Value::Null()})
                  .ok());
  EXPECT_TRUE(emp->AppendRow({Value::Int(2), Value::Text("Bob Stone"),
                              Value::Int(2), Value::Int(1)})
                  .ok());
  EXPECT_TRUE(emp->AppendRow({Value::Int(3), Value::Text("Carol Reed"),
                              Value::Int(2), Value::Int(2)})
                  .ok());
  EXPECT_TRUE(emp->AppendRow({Value::Int(4), Value::Text("Dave Hill"),
                              Value::Null(), Value::Null()})
                  .ok());

  Table* project = *db.AddTable("Project");
  EXPECT_TRUE(project->AddColumn("ProjId", ColumnType::kInt64).ok());
  EXPECT_TRUE(project->AddColumn("ProjName", ColumnType::kText).ok());
  EXPECT_TRUE(project->SetPrimaryKey(0).ok());
  // No rows on purpose.

  Table* asg = *db.AddTable("Assignment");
  EXPECT_TRUE(asg->AddColumn("AsgId", ColumnType::kInt64).ok());
  EXPECT_TRUE(asg->AddColumn("EmpId", ColumnType::kInt64).ok());
  EXPECT_TRUE(asg->AddColumn("ProjId", ColumnType::kInt64).ok());
  EXPECT_TRUE(asg->SetPrimaryKey(0).ok());

  EXPECT_TRUE(db.AddForeignKey("Emp", "DeptId", "Dept").ok());
  EXPECT_TRUE(db.AddForeignKey("Emp", "MentorId", "Emp").ok());
  EXPECT_TRUE(db.AddForeignKey("Assignment", "EmpId", "Emp").ok());
  EXPECT_TRUE(db.AddForeignKey("Assignment", "ProjId", "Project").ok());
  EXPECT_TRUE(db.Finalize(/*check_integrity=*/false).ok());
  return db;
}

struct EdgeWorld {
  Database db;
  std::unique_ptr<IndexSet> index;
  std::unique_ptr<SchemaGraph> graph;
};

const EdgeWorld& World() {
  static const EdgeWorld& world = *[] {
    auto* w = new EdgeWorld;
    w->db = MakeEdgeDb();
    auto index = IndexSet::Build(w->db);
    if (!index.ok()) abort();
    w->index = std::move(index).value();
    w->graph = std::make_unique<SchemaGraph>(w->db);
    return w;
  }();
  return world;
}

TEST(EdgeCaseTest, SelfReferencingFkInSchemaGraph) {
  const SchemaGraph& g = *World().graph;
  const TableId emp = World().db.FindTable("Emp")->id();
  int self_edges = 0;
  for (const SchemaGraph::Incidence& inc : g.IncidentEdges(emp)) {
    if (inc.neighbor == emp) ++self_edges;
  }
  // The Emp->Emp mentor edge contributes both orientations.
  EXPECT_EQ(self_edges, 2);
}

// Mentor-of spreadsheet: find queries joining Emp to itself. "Alice
// mentors someone named Stone" requires a self-join via MentorId.
TEST(EdgeCaseTest, SelfJoinDiscovery) {
  const EdgeWorld& w = World();
  auto sheet = ExampleSpreadsheet::FromCells({{"Alice", "Stone"}},
                                             w.index->tokenizer());
  ASSERT_TRUE(sheet.ok());
  SearchOptions options;
  options.k = 20;
  options.enumeration.max_tree_size = 3;
  SearchResult r = SearchFastTopK(*w.index, *w.graph, *sheet, options);
  ASSERT_FALSE(r.topk.empty());
  bool found_self_join = false;
  for (const ScoredQuery& sq : r.topk) {
    int emp_instances = 0;
    for (const JoinTree::Node& n : sq.query.tree().nodes()) {
      if (n.table == w.db.FindTable("Emp")->id()) ++emp_instances;
    }
    if (emp_instances == 2 && sq.row_score == 2.0) found_self_join = true;
  }
  EXPECT_TRUE(found_self_join);
}

// All candidate evaluations on this tricky database (NULL FKs, self
// joins) match the brute-force reference.
TEST(EdgeCaseTest, EvaluatorMatchesBruteForceWithNullsAndSelfJoins) {
  const EdgeWorld& w = World();
  auto sheet = ExampleSpreadsheet::FromCells(
      {{"Reed", "Engineering"}, {"Alice", "Sales"}}, w.index->tokenizer());
  ASSERT_TRUE(sheet.ok());
  ScoreContext ctx(*w.index, *sheet, ScoreParams{});
  EnumerationOptions opts;
  opts.max_tree_size = 3;
  EnumerationResult result = EnumerateCandidates(*w.graph, ctx, opts);
  ASSERT_GT(result.candidates.size(), 0u);

  testing::BruteForceEvaluator reference(*w.index, *sheet);
  Evaluator ev(ctx);
  for (const CandidateQuery& c : result.candidates) {
    EvalCounters counters;
    std::vector<double> got = ev.RowScores(c.query, nullptr, &counters);
    std::vector<double> want = reference.RowScores(c.query);
    ASSERT_EQ(got.size(), want.size());
    for (size_t t = 0; t < got.size(); ++t) {
      EXPECT_DOUBLE_EQ(got[t], want[t]) << c.query.ToString(w.db);
    }
  }
}

// Rows with NULL FKs must not join: Dave has no department, so a query
// projecting EmpName and DeptName cannot reach a score of 2 for the row
// ("Dave", "Sales") even though both values exist separately.
TEST(EdgeCaseTest, NullFkRowsDoNotJoin) {
  const EdgeWorld& w = World();
  auto sheet = ExampleSpreadsheet::FromCells({{"Dave", "Sales"}},
                                             w.index->tokenizer());
  ASSERT_TRUE(sheet.ok());
  SearchOptions options;
  options.k = 10;
  SearchResult r = SearchNaive(*w.index, *w.graph, *sheet, options);
  for (const ScoredQuery& sq : r.topk) {
    if (sq.query.tree().size() == 2) {
      EXPECT_LT(sq.row_score, 2.0) << sq.query.ToString(w.db);
    }
  }
}

// Queries whose join tree touches the empty Project relation (or the
// empty Assignment fact) evaluate to zero without crashing.
TEST(EdgeCaseTest, EmptyRelationYieldsZeroScores) {
  const EdgeWorld& w = World();
  auto sheet = ExampleSpreadsheet::FromCells({{"Alice"}},
                                             w.index->tokenizer());
  ASSERT_TRUE(sheet.ok());
  ScoreContext ctx(*w.index, *sheet, ScoreParams{});

  // Hand-build Emp <- Assignment (backward edge) with A -> EmpName.
  SchemaEdgeId asg_emp = -1;
  for (SchemaEdgeId e = 0; e < w.graph->NumEdges(); ++e) {
    if (w.db.table(w.graph->edge(e).src).name() == "Assignment" &&
        w.db.table(w.graph->edge(e).dst).name() == "Emp") {
      asg_emp = e;
    }
  }
  ASSERT_GE(asg_emp, 0);
  JoinTree tree = JoinTree::Single(w.db.FindTable("Emp")->id());
  tree.AddChild(0, *w.graph, asg_emp, EdgeDir::kBackward);
  PJQuery q(tree, {ProjectionBinding{
                      0, 0, w.db.FindTable("Emp")->ColumnIndex("EmpName")}});
  Evaluator ev(ctx);
  EvalCounters counters;
  std::vector<double> scores = ev.RowScores(q, nullptr, &counters);
  EXPECT_DOUBLE_EQ(scores[0], 0.0);
}

// With the text vocabulary split across disconnected schema components,
// AND semantics cannot build a tree and returns nothing (rather than
// inventing cross-component joins).
TEST(EdgeCaseTest, DisconnectedSchemaComponents) {
  Database db;
  for (const char* name : {"Alpha", "Beta"}) {
    Table* t = *db.AddTable(name);
    ASSERT_TRUE(t->AddColumn("Id", ColumnType::kInt64).ok());
    ASSERT_TRUE(t->AddColumn("Name", ColumnType::kText).ok());
    ASSERT_TRUE(t->SetPrimaryKey(0).ok());
    ASSERT_TRUE(t->AppendRow({Value::Int(1),
                              Value::Text(std::string(name) + " thing")})
                    .ok());
  }
  ASSERT_TRUE(db.Finalize().ok());
  auto index = IndexSet::Build(db);
  ASSERT_TRUE(index.ok());
  SchemaGraph graph(db);
  auto sheet = ExampleSpreadsheet::FromCells({{"alpha", "beta"}},
                                             (*index)->tokenizer());
  ASSERT_TRUE(sheet.ok());
  SearchOptions options;
  SearchResult r = SearchFastTopK(**index, graph, *sheet, options);
  EXPECT_TRUE(r.topk.empty());
}

// Strategies agree on the edge database too.
TEST(EdgeCaseTest, StrategiesAgreeOnEdgeDb) {
  const EdgeWorld& w = World();
  auto sheet = ExampleSpreadsheet::FromCells(
      {{"Reed", "Engineering"}, {"Bob", "Sales"}}, w.index->tokenizer());
  ASSERT_TRUE(sheet.ok());
  SearchOptions options;
  options.k = 7;
  options.enumeration.max_tree_size = 3;
  SearchResult naive = SearchNaive(*w.index, *w.graph, *sheet, options);
  SearchResult fast = SearchFastTopK(*w.index, *w.graph, *sheet, options);
  ASSERT_EQ(naive.topk.size(), fast.topk.size());
  for (size_t i = 0; i < naive.topk.size(); ++i) {
    EXPECT_NEAR(naive.topk[i].score, fast.topk[i].score, 1e-9);
  }
}

}  // namespace
}  // namespace s4
