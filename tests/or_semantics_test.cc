// OR-column-mapping semantics (Appendix A.3).
#include <gtest/gtest.h>

#include "strategy/or_semantics.h"
#include "tests/test_util.h"

namespace s4 {
namespace {

using testing::Fig2aSheet;
using testing::TpchGraph;
using testing::TpchIndex;

TEST(OrSemanticsTest, SupersetOfAndCandidates) {
  ExampleSpreadsheet sheet = Fig2aSheet(TpchIndex());
  SearchOptions options;
  options.k = 10;
  SearchResult and_result =
      SearchFastTopK(TpchIndex(), TpchGraph(), sheet, options);
  SearchResult or_result =
      SearchOrSemantics(TpchIndex(), TpchGraph(), sheet, options);

  // OR enumerates at least as many queries in total.
  EXPECT_GE(or_result.stats.queries_enumerated,
            and_result.stats.queries_enumerated);

  // Paper Fig 12(a): for fully-matched spreadsheets the top results of
  // OR and AND coincide — every AND top-k query also exists under OR,
  // and the best OR scores are not below the best AND scores.
  ASSERT_FALSE(or_result.topk.empty());
  EXPECT_GE(or_result.topk[0].score, and_result.topk[0].score - 1e-9);
}

TEST(OrSemanticsTest, FullMappingWinsWhenSpreadsheetMatches) {
  ExampleSpreadsheet sheet = Fig2aSheet(TpchIndex());
  SearchOptions options;
  options.k = 3;
  SearchResult or_result =
      SearchOrSemantics(TpchIndex(), TpchGraph(), sheet, options);
  ASSERT_FALSE(or_result.topk.empty());
  // The winner should map all three columns (AND semantics dominates
  // when the data supports it) — subsets lose score mass.
  std::set<int32_t> mapped;
  for (const ProjectionBinding& b : or_result.topk[0].query.bindings()) {
    mapped.insert(b.es_column);
  }
  EXPECT_EQ(mapped.size(), 3u);
}

TEST(OrSemanticsTest, NaiveAndFastAgree) {
  ExampleSpreadsheet sheet = Fig2aSheet(TpchIndex());
  SearchOptions options;
  options.k = 5;
  SearchResult fast = SearchOrSemantics(TpchIndex(), TpchGraph(), sheet,
                                        options, OrStrategy::kFastTopK);
  SearchResult naive = SearchOrSemantics(TpchIndex(), TpchGraph(), sheet,
                                         options, OrStrategy::kNaive);
  ASSERT_EQ(fast.topk.size(), naive.topk.size());
  for (size_t i = 0; i < fast.topk.size(); ++i) {
    EXPECT_NEAR(fast.topk[i].score, naive.topk[i].score, 1e-9);
  }
  // NAIVE evaluates everything it enumerates.
  EXPECT_EQ(naive.stats.queries_evaluated, naive.stats.queries_enumerated);
  EXPECT_LE(fast.stats.queries_evaluated, naive.stats.queries_evaluated);
}

// The "more direct way" (single extended candidate set) must return the
// same top-k scores as the subset-union implementation.
TEST(OrSemanticsTest, DirectMatchesSubsetUnion) {
  ExampleSpreadsheet sheet = Fig2aSheet(TpchIndex());
  SearchOptions options;
  options.k = 10;
  SearchResult subset = SearchOrSemantics(TpchIndex(), TpchGraph(), sheet,
                                          options, OrStrategy::kFastTopK);
  SearchResult direct = SearchOrSemantics(TpchIndex(), TpchGraph(), sheet,
                                          options, OrStrategy::kDirect);
  ASSERT_EQ(subset.topk.size(), direct.topk.size());
  for (size_t i = 0; i < subset.topk.size(); ++i) {
    EXPECT_NEAR(subset.topk[i].score, direct.topk[i].score, 1e-9)
        << "rank " << i;
  }
  // The direct variant enumerates once, so it sees fewer total
  // candidates than the sum over subsets but at least as many as AND.
  SearchResult and_r = SearchFastTopK(TpchIndex(), TpchGraph(), sheet,
                                      options);
  EXPECT_GE(direct.stats.queries_enumerated,
            and_r.stats.queries_enumerated);
  EXPECT_LE(direct.stats.queries_enumerated,
            subset.stats.queries_enumerated);
}

TEST(OrSemanticsTest, DirectHandlesUnmatchableColumn) {
  auto sheet = ExampleSpreadsheet::FromCells({{"Xbox", "qqqnothing"}},
                                             TpchIndex().tokenizer());
  ASSERT_TRUE(sheet.ok());
  SearchOptions options;
  SearchResult r = SearchOrSemantics(TpchIndex(), TpchGraph(), *sheet,
                                     options, OrStrategy::kDirect);
  ASSERT_FALSE(r.topk.empty());
  for (const ScoredQuery& sq : r.topk) {
    for (const ProjectionBinding& b : sq.query.bindings()) {
      EXPECT_EQ(b.es_column, 0);
    }
  }
}

TEST(OrSemanticsTest, HandlesUnmatchableColumn) {
  auto sheet = ExampleSpreadsheet::FromCells({{"Xbox", "qqqnothing"}},
                                             TpchIndex().tokenizer());
  ASSERT_TRUE(sheet.ok());
  SearchOptions options;
  SearchResult or_result =
      SearchOrSemantics(TpchIndex(), TpchGraph(), *sheet, options);
  ASSERT_FALSE(or_result.topk.empty());
  for (const ScoredQuery& sq : or_result.topk) {
    for (const ProjectionBinding& b : sq.query.bindings()) {
      EXPECT_EQ(b.es_column, 0);  // only column A is mappable
    }
  }
}

}  // namespace
}  // namespace s4
