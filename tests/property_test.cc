// Randomized property sweeps: system-level invariants over many
// generated databases, spreadsheets and configurations.
#include <gtest/gtest.h>

#include "datagen/es_gen.h"
#include "datagen/synthetic.h"
#include "strategy/incremental.h"
#include "strategy/strategy.h"
#include "tests/test_util.h"

namespace s4 {
namespace {

struct World {
  Database db;
  std::unique_ptr<IndexSet> index;
  std::unique_ptr<SchemaGraph> graph;
};

std::unique_ptr<World> MakeWorld(uint64_t seed) {
  auto w = std::make_unique<World>();
  datagen::CsuppSimOptions opts;
  opts.seed = seed;
  opts.num_cities = 12;
  opts.num_customers = 35;
  opts.num_products = 20;
  opts.num_agents = 12;
  opts.num_tickets = 90;
  opts.num_notes = 110;
  auto db = datagen::MakeCsuppSim(opts);
  if (!db.ok()) return nullptr;
  w->db = std::move(db).value();
  auto index = IndexSet::Build(w->db);
  if (!index.ok()) return nullptr;
  w->index = std::move(index).value();
  w->graph = std::make_unique<SchemaGraph>(w->db);
  return w;
}

class PropertyTest : public ::testing::TestWithParam<uint64_t> {};

// Invariant bundle per random world:
//  (a) upper bounds dominate exact scores (Prop 2);
//  (b) results are sorted by score;
//  (c) NAIVE / BASELINE / FASTTOPK agree on the top-k score sequence
//      (Thm 1/3);
//  (d) BASELINE never evaluates more than NAIVE;
//  (e) evaluation through the cache changes no score.
TEST_P(PropertyTest, StrategyInvariants) {
  const uint64_t seed = GetParam();
  std::unique_ptr<World> w = MakeWorld(seed);
  ASSERT_NE(w, nullptr);

  datagen::EsGenerator gen(*w->index, *w->graph, seed * 31 + 7);
  ASSERT_TRUE(gen.Init(5, 4).ok());
  datagen::EsGenOptions es_opts;
  es_opts.relationship_errors = static_cast<int32_t>(seed % 4);
  auto es = gen.Generate(es_opts);
  ASSERT_TRUE(es.ok()) << es.status();

  SearchOptions options;
  options.k = 5 + static_cast<int32_t>(seed % 3) * 5;
  options.score.alpha = 0.5 + 0.1 * static_cast<double>(seed % 5);
  options.epsilon = 0.2 + 0.4 * static_cast<double>(seed % 3);
  options.cache_budget_bytes = (seed % 2 == 0) ? (32u << 20) : (1u << 20);
  options.enumeration.max_tree_size = 4;

  PreparedSearch prep(*w->index, *w->graph, es->sheet, options);

  // (a): verify on NAIVE, which evaluates everything.
  SearchResult naive = RunNaive(prep, options);
  for (const ScoredQuery& sq : naive.topk) {
    EXPECT_LE(sq.score, sq.upper_bound + 1e-9);
  }
  // (b)
  for (size_t i = 1; i < naive.topk.size(); ++i) {
    EXPECT_GE(naive.topk[i - 1].score, naive.topk[i].score - 1e-12);
  }

  SearchResult baseline = RunBaseline(prep, options);
  SearchResult fast = RunFastTopK(prep, options);

  // (c)
  ASSERT_EQ(naive.topk.size(), baseline.topk.size());
  ASSERT_EQ(naive.topk.size(), fast.topk.size());
  for (size_t i = 0; i < naive.topk.size(); ++i) {
    EXPECT_NEAR(naive.topk[i].score, baseline.topk[i].score, 1e-9)
        << "seed " << seed << " rank " << i;
    EXPECT_NEAR(naive.topk[i].score, fast.topk[i].score, 1e-9)
        << "seed " << seed << " rank " << i;
  }
  // (d)
  EXPECT_LE(baseline.stats.queries_evaluated,
            naive.stats.queries_evaluated);

  // (e): spot-check a few candidates cold vs warm.
  Evaluator ev(prep.ctx);
  SubQueryCache cache(16u << 20);
  EvalCounters counters;
  EvalOptions eopts;
  eopts.offer_to_cache = true;
  const size_t step = std::max<size_t>(1, prep.candidates.size() / 7);
  for (size_t i = 0; i < prep.candidates.size(); i += step) {
    const PJQuery& q = prep.candidates[i].query;
    std::vector<double> cold = ev.RowScores(q, nullptr, &counters);
    std::vector<double> warm = ev.RowScores(q, &cache, &counters, eopts);
    std::vector<double> warm2 = ev.RowScores(q, &cache, &counters, eopts);
    for (size_t t = 0; t < cold.size(); ++t) {
      EXPECT_NEAR(cold[t], warm[t], 1e-9) << "seed " << seed;
      EXPECT_NEAR(cold[t], warm2[t], 1e-9) << "seed " << seed;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PropertyTest,
                         ::testing::Range<uint64_t>(1, 13));

// Incremental sessions agree with fresh searches on random worlds and
// random single-cell edits.
class IncrementalPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(IncrementalPropertyTest, SessionMatchesFreshAfterEdits) {
  const uint64_t seed = GetParam();
  std::unique_ptr<World> w = MakeWorld(seed + 100);
  ASSERT_NE(w, nullptr);

  datagen::EsGenerator gen(*w->index, *w->graph, seed * 17 + 3);
  ASSERT_TRUE(gen.Init(5, 4).ok());
  auto es = gen.Generate();
  ASSERT_TRUE(es.ok());

  SearchOptions options;
  options.k = 8;
  options.enumeration.max_tree_size = 4;
  SearchSession session(*w->index, *w->graph, options);
  ExampleSpreadsheet sheet = es->sheet;
  session.Search(sheet);

  Rng rng(seed);
  for (int edit = 0; edit < 3; ++edit) {
    // Replace one random cell with a term from another generated sheet.
    auto other = gen.Generate();
    ASSERT_TRUE(other.ok());
    const int32_t r =
        static_cast<int32_t>(rng.Uniform(sheet.NumRows()));
    const int32_t c =
        static_cast<int32_t>(rng.Uniform(sheet.NumColumns()));
    sheet = sheet.WithCell(r, c, other->sheet.cell(0, 0).raw,
                           w->index->tokenizer());
    SearchResult inc = session.Search(sheet);
    SearchResult fresh =
        SearchFastTopK(*w->index, *w->graph, sheet, options);
    ASSERT_EQ(inc.topk.size(), fresh.topk.size()) << "seed " << seed;
    for (size_t i = 0; i < inc.topk.size(); ++i) {
      EXPECT_NEAR(inc.topk[i].score, fresh.topk[i].score, 1e-9)
          << "seed " << seed << " edit " << edit << " rank " << i;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, IncrementalPropertyTest,
                         ::testing::Range<uint64_t>(1, 7));

// The A.2 scoring extensions preserve the upper-bound property.
class ExtensionPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ExtensionPropertyTest, UpperBoundHoldsUnderExtensions) {
  const uint64_t seed = GetParam();
  std::unique_ptr<World> w = MakeWorld(seed + 200);
  ASSERT_NE(w, nullptr);
  datagen::EsGenerator gen(*w->index, *w->graph, seed);
  ASSERT_TRUE(gen.Init(5, 4).ok());
  auto es = gen.Generate();
  ASSERT_TRUE(es.ok());

  SearchOptions options;
  options.k = 5;
  options.score.use_idf = true;
  options.score.exact_match_bonus = 2.0;
  options.enumeration.max_tree_size = 4;
  SearchResult naive =
      SearchNaive(*w->index, *w->graph, es->sheet, options);
  SearchResult fast =
      SearchFastTopK(*w->index, *w->graph, es->sheet, options);
  ASSERT_EQ(naive.topk.size(), fast.topk.size());
  for (size_t i = 0; i < naive.topk.size(); ++i) {
    EXPECT_NEAR(naive.topk[i].score, fast.topk[i].score, 1e-9);
    EXPECT_LE(naive.topk[i].score, naive.topk[i].upper_bound + 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ExtensionPropertyTest,
                         ::testing::Range<uint64_t>(1, 5));

}  // namespace
}  // namespace s4
