// Fault-injection suite for the scatter-gather coordinator: a
// FaultyShard proxy (tests/test_util.h) sits between the coordinator
// and one real shard server, dropping connections mid-request,
// blackholing past the deadline, or replacing a response frame with
// injected ResourceExhausted backpressure. The coordinator must (a)
// come back within its budget every time, (b) report complete=false
// exactly when a shard is lost, (c) degrade to the exact top-k of the
// reached slices — full top-k minus the lost slice, never a corrupted
// in-between — (d) retry backpressure exactly once, and (e) leak no
// file descriptors across any of it.
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "dist/coordinator.h"
#include "net/server.h"
#include "net/wire.h"
#include "s4/s4.h"
#include "service/s4_service.h"
#include "strategy/strategy.h"
#include "tests/test_util.h"

namespace s4::dist {
namespace {

using s4::testing::CountOpenFds;
using s4::testing::FaultyShard;
using s4::testing::WaitFor;

using Cells = std::vector<std::vector<std::string>>;

constexpr int32_t kShards = 3;
constexpr int32_t kK = 5;

const S4System& TpchSystem() {
  static const S4System& system = *[] {
    auto s = S4System::Create(s4::testing::TpchDb());
    if (!s.ok()) abort();
    return s->release();
  }();
  return system;
}

Cells TestCells() { return {{"Rick", "USA"}, {"Morty", "USA"}}; }

SearchOptions TestOptions() {
  SearchOptions options;
  options.k = kK;
  options.enumeration.max_tree_size = 3;
  options.num_threads = 2;
  return options;
}

// 3 shard servers with one FaultyShard proxy in front of shard
// `faulty_index`; the coordinator talks to the proxy for that shard and
// directly to the others.
struct FaultHarness {
  std::vector<std::unique_ptr<S4Service>> services;
  std::vector<std::unique_ptr<net::S4Server>> servers;
  std::unique_ptr<FaultyShard> faulty;
  std::unique_ptr<S4Coordinator> coordinator;
  int32_t faulty_index;

  FaultHarness(int32_t faulty_idx, FaultyShard::Options fopts,
               CoordinatorOptions copts = {})
      : faulty_index(faulty_idx) {
    for (int32_t i = 0; i < kShards; ++i) {
      ServiceOptions sopts;
      sopts.num_workers = 2;
      sopts.max_queue = 32;
      sopts.shard_count = kShards;
      sopts.shard_index = i;
      services.push_back(std::make_unique<S4Service>(TpchSystem(), sopts));
      servers.push_back(
          std::make_unique<net::S4Server>(services.back().get()));
      const Status st = servers.back()->Start();
      if (!st.ok()) abort();
      uint16_t port = servers.back()->port();
      if (i == faulty_idx) {
        faulty = std::make_unique<FaultyShard>(port, fopts);
        port = faulty->port();
      }
      copts.shards.push_back({"127.0.0.1", port});
    }
    coordinator = std::make_unique<S4Coordinator>(std::move(copts));
  }
};

// The canonical rank order (score desc, signature asc) — restated here
// so the expected degraded result is computed independently of the code
// under test.
bool MergeBefore(const net::NetTopkEntry& a, const net::NetTopkEntry& b) {
  if (a.score != b.score) return a.score > b.score;
  return a.signature < b.signature;
}

// Exact expected degraded top-k: per-slice single-node searches over
// every reached slice, merged under the coordinator's order. This is
// "the full top-k minus the lost slice" computed without any networking.
std::vector<net::NetTopkEntry> ExpectedWithoutShard(int32_t lost) {
  std::vector<net::NetTopkEntry> all;
  for (int32_t i = 0; i < kShards; ++i) {
    if (i == lost) continue;
    SearchOptions options = TestOptions();
    options.shard_count = kShards;
    options.shard_index = i;
    auto r = TpchSystem().Search(TestCells(), options);
    if (!r.ok()) abort();
    for (const auto& e : r->topk) {
      net::NetTopkEntry entry;
      entry.signature = e.query.signature();
      entry.score = e.score;
      entry.upper_bound = e.upper_bound;
      all.push_back(std::move(entry));
    }
  }
  std::sort(all.begin(), all.end(), MergeBefore);
  if (all.size() > static_cast<size_t>(kK)) all.resize(kK);
  return all;
}

void ExpectSameTopk(const std::vector<net::NetTopkEntry>& want,
                    const std::vector<net::NetTopkEntry>& got,
                    const std::string& label) {
  ASSERT_EQ(want.size(), got.size()) << label;
  for (size_t i = 0; i < want.size(); ++i) {
    EXPECT_EQ(want[i].signature, got[i].signature) << label << " rank " << i;
    EXPECT_EQ(want[i].score, got[i].score) << label << " rank " << i;
  }
}

TEST(DistFaultTest, DropMidRequestDegradesToReachedSlices) {
  const int fds_before = CountOpenFds();
  const int32_t lost = 1;
  {
    FaultyShard::Options fopts;
    fopts.fault = FaultyShard::Fault::kDropMidRequest;
    fopts.fail_connections = 100;  // every attempt, retries included
    FaultHarness h(lost, fopts);

    auto got = h.coordinator->Search(net::NetSearchRequest::From(
        TestCells(), TestOptions(), S4System::Strategy::kFastTopK));
    ASSERT_TRUE(got.ok()) << got.status();
    EXPECT_FALSE(got->complete);
    ASSERT_EQ(got->unreached_shards, std::vector<int32_t>{lost});
    EXPECT_FALSE(got->shards[lost].reached);
    EXPECT_FALSE(got->shards[lost].error.empty());
    for (int32_t i = 0; i < kShards; ++i) {
      if (i != lost) EXPECT_TRUE(got->shards[i].reached) << "shard " << i;
    }
    ExpectSameTopk(ExpectedWithoutShard(lost), got->topk, "drop");

    // Transport failures are never retried: one attempt, one proxy
    // connection.
    EXPECT_EQ(got->shards[lost].retries, 0);
    EXPECT_EQ(h.faulty->connections_seen(), 1);
  }
  EXPECT_TRUE(WaitFor([&] { return CountOpenFds() <= fds_before; }))
      << "fd leak: " << CountOpenFds() << " open, was " << fds_before;
}

TEST(DistFaultTest, BlackholeShardTimesOutWithinBudget) {
  const int fds_before = CountOpenFds();
  const int32_t lost = 2;
  {
    FaultyShard::Options fopts;
    fopts.fault = FaultyShard::Fault::kBlackhole;
    fopts.fail_connections = 100;
    CoordinatorOptions copts;
    copts.request_timeout_seconds = 1.5;
    FaultHarness h(lost, fopts, std::move(copts));

    const auto start = std::chrono::steady_clock::now();
    auto got = h.coordinator->Search(net::NetSearchRequest::From(
        TestCells(), TestOptions(), S4System::Strategy::kFastTopK));
    const double elapsed =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      start)
            .count();

    ASSERT_TRUE(got.ok()) << got.status();
    EXPECT_FALSE(got->complete);
    ASSERT_EQ(got->unreached_shards, std::vector<int32_t>{lost});
    // The whole search — including the hung shard — returns within the
    // budget plus bounded slack, instead of hanging until the peer
    // gives up.
    EXPECT_LT(elapsed, 6.0) << "coordinator did not honor its budget";
    EXPECT_EQ(got->shards[lost].retries, 0);  // timeouts are not retried
    ExpectSameTopk(ExpectedWithoutShard(lost), got->topk, "blackhole");
  }
  EXPECT_TRUE(WaitFor([&] { return CountOpenFds() <= fds_before; }))
      << "fd leak: " << CountOpenFds() << " open, was " << fds_before;
}

TEST(DistFaultTest, BackpressureRetriesOnceThenSucceeds) {
  const int fds_before = CountOpenFds();
  const int32_t flaky = 0;
  {
    FaultyShard::Options fopts;
    fopts.fault = FaultyShard::Fault::kErrorOnNthFrame;
    fopts.fail_connections = 1;  // first attempt poisoned, retry clean
    FaultHarness h(flaky, fopts);

    auto got = h.coordinator->Search(net::NetSearchRequest::From(
        TestCells(), TestOptions(), S4System::Strategy::kFastTopK));
    ASSERT_TRUE(got.ok()) << got.status();
    EXPECT_TRUE(got->complete);
    EXPECT_TRUE(got->unreached_shards.empty());
    EXPECT_EQ(got->shards[flaky].retries, 1);
    EXPECT_TRUE(got->shards[flaky].reached);
    EXPECT_EQ(h.faulty->connections_seen(), 2);

    // With the retry absorbed the result is the full, non-degraded
    // top-k — bit-identical to single-node.
    auto ref = TpchSystem().Search(TestCells(), TestOptions());
    ASSERT_TRUE(ref.ok());
    ASSERT_EQ(ref->topk.size(), got->topk.size());
    for (size_t i = 0; i < got->topk.size(); ++i) {
      EXPECT_EQ(ref->topk[i].query.signature(), got->topk[i].signature);
      EXPECT_EQ(ref->topk[i].score, got->topk[i].score);
    }
  }
  EXPECT_TRUE(WaitFor([&] { return CountOpenFds() <= fds_before; }))
      << "fd leak: " << CountOpenFds() << " open, was " << fds_before;
}

TEST(DistFaultTest, BackpressureBeyondRetryBudgetLosesShard) {
  const int fds_before = CountOpenFds();
  const int32_t lost = 0;
  {
    FaultyShard::Options fopts;
    fopts.fault = FaultyShard::Fault::kErrorOnNthFrame;
    fopts.fail_connections = 100;  // the retry fails too
    FaultHarness h(lost, fopts);

    auto got = h.coordinator->Search(net::NetSearchRequest::From(
        TestCells(), TestOptions(), S4System::Strategy::kFastTopK));
    ASSERT_TRUE(got.ok()) << got.status();
    EXPECT_FALSE(got->complete);
    ASSERT_EQ(got->unreached_shards, std::vector<int32_t>{lost});
    EXPECT_EQ(got->shards[lost].retries, 1);  // bounded: exactly one retry
    EXPECT_EQ(h.faulty->connections_seen(), 2);
    ExpectSameTopk(ExpectedWithoutShard(lost), got->topk, "exhausted");
  }
  EXPECT_TRUE(WaitFor([&] { return CountOpenFds() <= fds_before; }))
      << "fd leak: " << CountOpenFds() << " open, was " << fds_before;
}

// A clean proxy in the path must be invisible: complete results,
// bit-identical to the directly-connected deployment, no retries.
TEST(DistFaultTest, PassthroughProxyIsInvisible) {
  const int fds_before = CountOpenFds();
  {
    FaultyShard::Options fopts;
    fopts.fault = FaultyShard::Fault::kNone;
    FaultHarness h(1, fopts);

    auto got = h.coordinator->Search(net::NetSearchRequest::From(
        TestCells(), TestOptions(), S4System::Strategy::kFastTopK));
    ASSERT_TRUE(got.ok()) << got.status();
    EXPECT_TRUE(got->complete);
    EXPECT_TRUE(got->unreached_shards.empty());
    for (const auto& s : got->shards) {
      EXPECT_TRUE(s.reached);
      EXPECT_EQ(s.retries, 0);
    }
    auto ref = TpchSystem().Search(TestCells(), TestOptions());
    ASSERT_TRUE(ref.ok());
    ASSERT_EQ(ref->topk.size(), got->topk.size());
    for (size_t i = 0; i < got->topk.size(); ++i) {
      EXPECT_EQ(ref->topk[i].query.signature(), got->topk[i].signature);
      EXPECT_EQ(ref->topk[i].score, got->topk[i].score);
    }
  }
  EXPECT_TRUE(WaitFor([&] { return CountOpenFds() <= fds_before; }))
      << "fd leak: " << CountOpenFds() << " open, was " << fds_before;
}

}  // namespace
}  // namespace s4::dist
