// End-to-end S4System tests: the public API a downstream user touches.
#include <gtest/gtest.h>

#include "datagen/tpch_mini.h"
#include "s4/s4.h"
#include "tests/test_util.h"

namespace s4 {
namespace {

const S4System& System() {
  static const S4System& system = *[] {
    auto s = S4System::Create(testing::TpchDb());
    if (!s.ok()) abort();
    return s->release();
  }();
  return system;
}

TEST(S4SystemTest, QuickstartTopResultContainsSpreadsheet) {
  SearchOptions options;
  options.k = 5;
  auto result = System().Search(
      {
          {"Rick", "USA", "Xbox"},
          {"Julie", "", "iPhone"},
          {"Kevin", "Canada", ""},
      },
      options);
  ASSERT_TRUE(result.ok());
  ASSERT_GE(result->topk.size(), 3u);
  // The full-containment queries score row=7 at the top.
  EXPECT_DOUBLE_EQ(result->topk[0].row_score, 7.0);
  // Figure 2(b)-(i) — Customer-rooted with LineItem — is among the top-k.
  bool found = false;
  for (const ScoredQuery& sq : result->topk) {
    std::string s = sq.query.ToString(System().db());
    if (s.find("A->Customer.CustName") != std::string::npos &&
        s.find("LineItem") != std::string::npos) {
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(S4SystemTest, StrategiesExposedOnFacade) {
  SearchOptions options;
  options.k = 3;
  std::vector<std::vector<std::string>> cells{{"Rick", "USA", "Xbox"},
                                              {"Julie", "", "iPhone"},
                                              {"Kevin", "Canada", ""}};
  auto naive = System().Search(cells, options, S4System::Strategy::kNaive);
  auto base = System().Search(cells, options, S4System::Strategy::kBaseline);
  auto fast = System().Search(cells, options, S4System::Strategy::kFastTopK);
  ASSERT_TRUE(naive.ok() && base.ok() && fast.ok());
  ASSERT_EQ(naive->topk.size(), fast->topk.size());
  for (size_t i = 0; i < naive->topk.size(); ++i) {
    EXPECT_NEAR(naive->topk[i].score, base->topk[i].score, 1e-9);
    EXPECT_NEAR(naive->topk[i].score, fast->topk[i].score, 1e-9);
  }
}

TEST(S4SystemTest, RejectsInvalidSpreadsheet) {
  auto r = System().Search({{"", ""}});
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

TEST(S4SystemTest, FormatResultsMentionsSqlAndScores) {
  SearchOptions options;
  options.k = 2;
  auto result = System().Search({{"Xbox"}, {"Samsung"}}, options);
  ASSERT_TRUE(result.ok());
  std::string report = System().FormatResults(*result);
  EXPECT_NE(report.find("score="), std::string::npos);
  EXPECT_NE(report.find("SELECT"), std::string::npos);
  EXPECT_NE(report.find("top-"), std::string::npos);
}

TEST(S4SystemTest, SearchOrFindsPartialMappings) {
  // Column B's vocabulary ("zzz") matches nothing, so AND semantics
  // yields no candidates but OR semantics still finds Part queries via
  // column A.
  auto sheet = System().MakeSpreadsheet({{"Xbox", "zzznothing"}});
  ASSERT_TRUE(sheet.ok());
  SearchOptions options;
  SearchResult and_result = System().Search(*sheet, options);
  EXPECT_TRUE(and_result.topk.empty());
  SearchResult or_result = System().SearchOr(*sheet, options);
  ASSERT_FALSE(or_result.topk.empty());
  bool mentions_part = false;
  for (const ScoredQuery& sq : or_result.topk) {
    if (sq.query.ToString(System().db()).find("Part") !=
        std::string::npos) {
      mentions_part = true;
    }
  }
  EXPECT_TRUE(mentions_part);
}

TEST(S4SystemTest, SessionViaFacade) {
  SearchOptions options;
  options.k = 3;
  SearchSession session = System().NewSession(options);
  auto sheet = System().MakeSpreadsheet({{"Rick", "USA"}});
  ASSERT_TRUE(sheet.ok());
  SearchResult r1 = session.Search(*sheet);
  EXPECT_FALSE(r1.topk.empty());
  ExampleSpreadsheet edited =
      sheet->WithCell(0, 0, "Kevin", System().index().tokenizer());
  SearchResult r2 = session.Search(edited);
  EXPECT_FALSE(r2.topk.empty());
}

TEST(S4SystemTest, IndexStats) {
  IndexStats stats = System().index_stats();
  EXPECT_EQ(stats.num_tokens, 20);
  EXPECT_GT(stats.inverted_index_bytes, 0u);
}

}  // namespace
}  // namespace s4
