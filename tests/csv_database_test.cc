// CSV + schema-spec database loading (the bring-your-own-data path).
#include <cstdio>
#include <filesystem>
#include <fstream>

#include <gtest/gtest.h>

#include "s4/s4.h"
#include "storage/csv_database.h"

namespace s4 {
namespace {

class CsvDatabaseTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() / "s4_csv_test";
    std::filesystem::create_directories(dir_);
    Write("albums.csv",
          "AlbumId,Title,ArtistId\n"
          "1,Abbey Road,1\n"
          "2,Kind of Blue,2\n");
    Write("artists.csv",
          "ArtistId,Name,CountryId\n"
          "1,The Beatles,1\n"
          "2,Miles Davis,2\n");
    Write("countries.csv",
          "CountryId,Country\n"
          "1,England\n"
          "2,USA\n");
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  void Write(const std::string& name, const std::string& content) {
    std::ofstream out(dir_ / name);
    out << content;
  }

  std::filesystem::path dir_;
};

constexpr const char* kSchema =
    "# music demo\n"
    "table Album albums.csv AlbumId\n"
    "table Artist artists.csv ArtistId\n"
    "table Country countries.csv CountryId\n"
    "fk Album.ArtistId -> Artist\n"
    "fk Artist.CountryId -> Country\n";

TEST_F(CsvDatabaseTest, LoadsAndSearches) {
  auto db = LoadCsvDatabase(dir_.string(), kSchema);
  ASSERT_TRUE(db.ok()) << db.status();
  EXPECT_EQ(db->NumTables(), 3);
  EXPECT_EQ(db->foreign_keys().size(), 2u);
  // Key-like columns inferred as INT64, others as TEXT.
  const Table* album = db->FindTable("Album");
  EXPECT_EQ(album->column(album->ColumnIndex("Title")).type,
            ColumnType::kText);
  EXPECT_EQ(album->column(album->ColumnIndex("ArtistId")).type,
            ColumnType::kInt64);

  auto system = S4System::Create(*db);
  ASSERT_TRUE(system.ok());
  auto result = (*system)->Search({{"Beatles", "Abbey"}});
  ASSERT_TRUE(result.ok());
  ASSERT_FALSE(result->topk.empty());
  EXPECT_NE(result->topk[0].query.ToSql(*db).find("JOIN"),
            std::string::npos);
}

TEST_F(CsvDatabaseTest, SchemaFromFile) {
  Write("schema.txt", kSchema);
  auto db = LoadCsvDatabaseFromFile(dir_.string(),
                                    (dir_ / "schema.txt").string());
  ASSERT_TRUE(db.ok()) << db.status();
  EXPECT_EQ(db->NumTables(), 3);
}

TEST_F(CsvDatabaseTest, Rejections) {
  EXPECT_FALSE(LoadCsvDatabase(dir_.string(), "nonsense line\n").ok());
  EXPECT_FALSE(
      LoadCsvDatabase(dir_.string(),
                      "table Missing missing.csv MissingId\n")
          .ok());
  EXPECT_FALSE(
      LoadCsvDatabase(dir_.string(), "table Album albums.csv Nope\n").ok());
  EXPECT_FALSE(LoadCsvDatabase(dir_.string(),
                               "table Album albums.csv AlbumId\n"
                               "fk Album.Bad -> Album\n")
                   .ok());
  // Dangling FK caught by referential check.
  Write("bad.csv",
        "BadId,ArtistId\n"
        "1,999\n");
  EXPECT_FALSE(LoadCsvDatabase(dir_.string(),
                               "table Artist artists.csv ArtistId\n"
                               "table Bad bad.csv BadId\n"
                               "fk Bad.ArtistId -> Artist\n")
                   .ok());
}

}  // namespace
}  // namespace s4
