// EXPLAIN-style plan rendering (the Fig 14 view).
#include <gtest/gtest.h>

#include "enumerate/enumerator.h"
#include "exec/explain.h"
#include "tests/test_util.h"

namespace s4 {
namespace {

using testing::Fig2aSheet;
using testing::TpchGraph;
using testing::TpchIndex;

TEST(ExplainTest, PlanShowsAllStagesAndNodes) {
  ExampleSpreadsheet sheet = Fig2aSheet(TpchIndex());
  ScoreContext ctx(TpchIndex(), sheet, ScoreParams{});
  EnumerationResult r = EnumerateCandidates(TpchGraph(), ctx);
  ASSERT_FALSE(r.candidates.empty());
  const PJQuery* big = nullptr;
  for (const CandidateQuery& c : r.candidates) {
    if (c.query.tree().size() == 5) big = &c.query;
  }
  ASSERT_NE(big, nullptr);
  std::string plan = ExplainPlan(*big, ctx);
  EXPECT_NE(plan.find("|J|=5"), std::string::npos);
  EXPECT_NE(plan.find("stage I"), std::string::npos);
  EXPECT_NE(plan.find("stage II"), std::string::npos);
  EXPECT_NE(plan.find("build table keyed by"), std::string::npos);
  EXPECT_NE(plan.find("cache key"), std::string::npos);
  // All five relations appear, numbered in post-order 1..5.
  EXPECT_NE(plan.find("(1) "), std::string::npos);
  EXPECT_NE(plan.find("(5) "), std::string::npos);
  EXPECT_NE(plan.find("model cost="), std::string::npos);
}

TEST(ExplainTest, SingleNodePlan) {
  auto sheet = ExampleSpreadsheet::FromCells({{"Xbox"}},
                                             TpchIndex().tokenizer());
  ASSERT_TRUE(sheet.ok());
  ScoreContext ctx(TpchIndex(), *sheet, ScoreParams{});
  EnumerationResult r = EnumerateCandidates(TpchGraph(), ctx);
  for (const CandidateQuery& c : r.candidates) {
    if (c.query.tree().size() == 1) {
      std::string plan = ExplainPlan(c.query, ctx);
      EXPECT_NE(plan.find("Part"), std::string::npos);
      EXPECT_NE(plan.find("keyed by pk"), std::string::npos);
      return;
    }
  }
  FAIL() << "no single-node candidate";
}

}  // namespace
}  // namespace s4
