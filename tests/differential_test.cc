// Strategy-equivalence differential suite: across randomly generated
// schemas, NAIVE, BASELINE and FASTTOPK must return the same top-k sets
// and scores (Thm 1 / Thm 3) at every thread count. The serial NAIVE
// run is the reference; every other (strategy, num_threads) combination
// is compared against it rank-by-rank.
#include <cmath>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "common/string_util.h"
#include "datagen/random_schema.h"
#include "strategy/strategy.h"
#include "tests/test_util.h"

namespace s4 {
namespace {

// Rank-by-rank score agreement plus tie-safe signature agreement: where
// the reference score is unique (no neighbor within tolerance), the
// signature at that rank must match too; among exact ties only the
// score sequence is pinned down.
void ExpectEquivalentTopK(const SearchResult& ref, const SearchResult& got,
                          const std::string& label) {
  ASSERT_EQ(ref.topk.size(), got.topk.size()) << label;
  const double kTol = 1e-9;
  for (size_t i = 0; i < ref.topk.size(); ++i) {
    EXPECT_NEAR(ref.topk[i].score, got.topk[i].score, kTol)
        << label << " rank " << i;
    const bool tied_prev =
        i > 0 && std::abs(ref.topk[i].score - ref.topk[i - 1].score) <= kTol;
    const bool tied_next =
        i + 1 < ref.topk.size() &&
        std::abs(ref.topk[i].score - ref.topk[i + 1].score) <= kTol;
    if (!tied_prev && !tied_next) {
      EXPECT_EQ(ref.topk[i].query.signature(), got.topk[i].query.signature())
          << label << " rank " << i;
    }
  }
}

class DifferentialTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(DifferentialTest, StrategiesAgreeAcrossThreadCounts) {
  const uint64_t seed = GetParam();
  datagen::RandomSchemaOptions opts;
  opts.seed = seed;
  opts.num_tables = 4 + static_cast<int32_t>(seed % 4);
  auto db = datagen::MakeRandomSchema(opts);
  ASSERT_TRUE(db.ok()) << db.status();

  auto index = IndexSet::Build(*db);
  ASSERT_TRUE(index.ok());
  SchemaGraph graph(*db);

  // Random spreadsheet over the generator's shared vocabulary.
  Rng rng(seed * 131 + 7);
  std::vector<std::vector<std::string>> cells(2);
  for (auto& row : cells) {
    for (int c = 0; c < 2; ++c) {
      std::string cell = StrFormat(
          "w%lld", static_cast<long long>(rng.Uniform(opts.vocab_size)));
      if (rng.Bernoulli(0.4)) {
        cell += StrFormat(
            " w%lld",
            static_cast<long long>(rng.Uniform(opts.vocab_size)));
      }
      row.push_back(cell);
    }
  }
  auto sheet = ExampleSpreadsheet::FromCells(cells, (*index)->tokenizer());
  ASSERT_TRUE(sheet.ok());

  SearchOptions base;
  base.k = 5;
  base.enumeration.max_tree_size = 3;
  base.enumeration.max_queries = 4000;
  base.num_threads = 1;
  PreparedSearch prep(**index, graph, *sheet, base);
  SearchResult ref = RunNaive(prep, base);

  for (int32_t threads : {1, 4}) {
    SearchOptions options = base;
    options.num_threads = threads;
    const std::string suffix =
        " seed=" + std::to_string(seed) + " T=" + std::to_string(threads);
    SearchResult naive = RunNaive(prep, options);
    SearchResult baseline = RunBaseline(prep, options);
    SearchResult fast = RunFastTopK(prep, options);
    ExpectEquivalentTopK(ref, naive, "naive" + suffix);
    ExpectEquivalentTopK(ref, baseline, "baseline" + suffix);
    ExpectEquivalentTopK(ref, fast, "fasttopk" + suffix);
    // Pruning invariants hold at any thread count.
    EXPECT_EQ(naive.stats.queries_evaluated, naive.stats.queries_enumerated)
        << suffix;
    EXPECT_LE(baseline.stats.queries_evaluated,
              naive.stats.queries_evaluated)
        << suffix;
    EXPECT_LE(fast.stats.queries_evaluated + fast.stats.skipped_by_condition,
              naive.stats.queries_evaluated)
        << suffix;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DifferentialTest,
                         ::testing::Range<uint64_t>(1, 21));

}  // namespace
}  // namespace s4
