// Tokenizer and term dictionary tests (Sec 6.1 tokenization rules,
// Appendix A.2 n-gram mode).
#include <gtest/gtest.h>

#include "text/term_dict.h"
#include "text/tokenizer.h"

namespace s4 {
namespace {

TEST(TokenizerTest, LowercasesAndSplits) {
  Tokenizer tok;
  EXPECT_EQ(tok.Tokenize("Xbox One"),
            (std::vector<std::string>{"xbox", "one"}));
  EXPECT_EQ(tok.Tokenize("  Rick   Miller "),
            (std::vector<std::string>{"rick", "miller"}));
}

TEST(TokenizerTest, PunctuationSeparates) {
  Tokenizer tok;
  EXPECT_EQ(tok.Tokenize("a-b c_d e/f (g) h:i 'j' \"k\""),
            (std::vector<std::string>{"a", "b", "c", "d", "e", "f", "g",
                                      "h", "i", "j", "k"}));
}

TEST(TokenizerTest, DiscardsTokensWithOddCharacters) {
  Tokenizer tok;
  // '@' is not a separator: it poisons the token (paper: discard tokens
  // containing non-alphanumeric characters).
  EXPECT_EQ(tok.Tokenize("bob@example ok"),
            (std::vector<std::string>{"ok"}));
}

TEST(TokenizerTest, DiscardsOverlongTokens) {
  Tokenizer tok;  // default max 15
  EXPECT_EQ(tok.Tokenize("short aaaaaaaaaaaaaaaa"),
            (std::vector<std::string>{"short"}));
  EXPECT_EQ(tok.Tokenize("exactlyfifteen1"),
            (std::vector<std::string>{"exactlyfifteen1"}));
}

TEST(TokenizerTest, NumbersAreTokens) {
  Tokenizer tok;
  EXPECT_EQ(tok.Tokenize("iPhone 6"),
            (std::vector<std::string>{"iphone", "6"}));
}

TEST(TokenizerTest, TokenizeUniquePreservesOrder) {
  Tokenizer tok;
  EXPECT_EQ(tok.TokenizeUnique("b a b c a"),
            (std::vector<std::string>{"b", "a", "c"}));
}

TEST(TokenizerTest, EmptyInput) {
  Tokenizer tok;
  EXPECT_TRUE(tok.Tokenize("").empty());
  EXPECT_TRUE(tok.Tokenize("  -- ").empty());
}

TEST(TokenizerTest, NGramMode) {
  TokenizerOptions opts;
  opts.mode = TokenizerMode::kNGram;
  opts.ngram_size = 3;
  Tokenizer tok(opts);
  EXPECT_EQ(tok.Tokenize("abcd"),
            (std::vector<std::string>{"abc", "bcd"}));
  // Short words become a single gram.
  EXPECT_EQ(tok.Tokenize("ab"), (std::vector<std::string>{"ab"}));
  // Fuzzy overlap: "xbox" and "xbbox" share grams.
  auto a = tok.TokenizeUnique("xbox");
  auto b = tok.TokenizeUnique("xbbox");
  int shared = 0;
  for (const auto& g : a) {
    if (std::find(b.begin(), b.end(), g) != b.end()) ++shared;
  }
  EXPECT_GT(shared, 0);
}

TEST(TermDictTest, InternAndLookup) {
  TermDict dict;
  TermId a = dict.Intern("alpha");
  TermId b = dict.Intern("beta");
  EXPECT_NE(a, b);
  EXPECT_EQ(dict.Intern("alpha"), a);
  EXPECT_EQ(dict.Lookup("alpha"), a);
  EXPECT_EQ(dict.Lookup("gamma"), kInvalidTermId);
  EXPECT_EQ(dict.term(a), "alpha");
  EXPECT_EQ(dict.size(), 2);
  EXPECT_GT(dict.ByteSize(), 0u);
}

}  // namespace
}  // namespace s4
