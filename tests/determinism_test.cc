// Determinism guarantees of the parallel evaluation path: a fixed seed
// and fixed options produce identical SearchResults across repeated
// runs, and the parallel strategies reproduce the serial top-k. NAIVE
// and BASELINE are bit-identical to the serial path by construction
// (ordered merge / speculative replay); FASTTOPK pins the top-k and the
// scheduling-invariant stats while cache-content-dependent bookkeeping
// (model cost, hash counters, hit rates) may legitimately differ from
// the serial schedule.
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "datagen/es_gen.h"
#include "datagen/synthetic.h"
#include "strategy/strategy.h"
#include "tests/test_util.h"

namespace s4 {
namespace {

struct DetWorld {
  Database db;
  std::unique_ptr<IndexSet> index;
  std::unique_ptr<SchemaGraph> graph;
  std::unique_ptr<ExampleSpreadsheet> sheet;
};

const DetWorld& World() {
  static const DetWorld& world = *[] {
    auto* w = new DetWorld;
    datagen::CsuppSimOptions opts;
    opts.num_cities = 15;
    opts.num_customers = 50;
    opts.num_products = 30;
    opts.num_agents = 20;
    opts.num_tickets = 160;
    opts.num_notes = 220;
    auto db = datagen::MakeCsuppSim(opts);
    if (!db.ok()) abort();
    w->db = std::move(db).value();
    auto index = IndexSet::Build(w->db);
    if (!index.ok()) abort();
    w->index = std::move(index).value();
    w->graph = std::make_unique<SchemaGraph>(w->db);
    datagen::EsGenerator gen(*w->index, *w->graph, /*seed=*/77);
    if (!gen.Init(/*min_text_columns=*/6, /*max_tree_size=*/4).ok()) abort();
    auto es = gen.Generate();
    if (!es.ok()) abort();
    w->sheet = std::make_unique<ExampleSpreadsheet>(std::move(es->sheet));
    return w;
  }();
  return world;
}

SearchOptions Options(int32_t threads) {
  SearchOptions options;
  options.k = 8;
  options.enumeration.max_tree_size = 4;
  options.num_threads = threads;
  return options;
}

// Byte-identical top-k: signatures and exact (==) double scores.
void ExpectIdenticalTopK(const SearchResult& a, const SearchResult& b,
                         const std::string& label) {
  ASSERT_EQ(a.topk.size(), b.topk.size()) << label;
  for (size_t i = 0; i < a.topk.size(); ++i) {
    EXPECT_EQ(a.topk[i].query.signature(), b.topk[i].query.signature())
        << label << " rank " << i;
    EXPECT_EQ(a.topk[i].score, b.topk[i].score) << label << " rank " << i;
    EXPECT_EQ(a.topk[i].row_score, b.topk[i].row_score)
        << label << " rank " << i;
    EXPECT_EQ(a.topk[i].upper_bound, b.topk[i].upper_bound)
        << label << " rank " << i;
  }
}

// Scheduling-invariant stats: identical for a fixed thread count, and
// for NAIVE/BASELINE identical across thread counts too.
void ExpectInvariantStatsEqual(const RunStats& a, const RunStats& b,
                               const std::string& label) {
  EXPECT_EQ(a.queries_enumerated, b.queries_enumerated) << label;
  EXPECT_EQ(a.queries_evaluated, b.queries_evaluated) << label;
  EXPECT_EQ(a.query_row_evals, b.query_row_evals) << label;
  EXPECT_EQ(a.skipped_by_condition, b.skipped_by_condition) << label;
  EXPECT_EQ(a.batches, b.batches) << label;
  EXPECT_EQ(a.critical_subs_cached, b.critical_subs_cached) << label;
}

// Everything except wall-clock timings.
void ExpectAllStatsEqual(const RunStats& a, const RunStats& b,
                         const std::string& label) {
  ExpectInvariantStatsEqual(a, b, label);
  EXPECT_EQ(a.model_cost, b.model_cost) << label;
  EXPECT_EQ(a.counters.rows_scanned, b.counters.rows_scanned) << label;
  EXPECT_EQ(a.counters.hash_lookups, b.counters.hash_lookups) << label;
  EXPECT_EQ(a.counters.hash_inserts, b.counters.hash_inserts) << label;
  EXPECT_EQ(a.counters.postings_scanned, b.counters.postings_scanned)
      << label;
  EXPECT_EQ(a.counters.cache_hits, b.counters.cache_hits) << label;
  EXPECT_EQ(a.counters.cache_misses, b.counters.cache_misses) << label;
}

TEST(DeterminismTest, SerialRepeatedRunsIdentical) {
  const DetWorld& w = World();
  SearchOptions options = Options(/*threads=*/1);
  PreparedSearch prep(*w.index, *w.graph, *w.sheet, options);
  for (auto* runner : {&RunNaive, &RunBaseline, &RunFastTopK}) {
    SearchResult a = runner(prep, options);
    SearchResult b = runner(prep, options);
    ExpectIdenticalTopK(a, b, "serial-repeat");
    ExpectAllStatsEqual(a.stats, b.stats, "serial-repeat");
    ASSERT_EQ(a.evaluated.size(), b.evaluated.size());
    for (size_t i = 0; i < a.evaluated.size(); ++i) {
      EXPECT_EQ(a.evaluated[i].signature, b.evaluated[i].signature);
      EXPECT_EQ(a.evaluated[i].row_scores, b.evaluated[i].row_scores);
    }
  }
}

TEST(DeterminismTest, ParallelRepeatedRunsIdentical) {
  const DetWorld& w = World();
  SearchOptions options = Options(/*threads=*/8);
  PreparedSearch prep(*w.index, *w.graph, *w.sheet, options);
  for (auto* runner : {&RunNaive, &RunBaseline, &RunFastTopK}) {
    SearchResult a = runner(prep, options);
    SearchResult b = runner(prep, options);
    ExpectIdenticalTopK(a, b, "parallel-repeat");
    ExpectInvariantStatsEqual(a.stats, b.stats, "parallel-repeat");
  }
}

TEST(DeterminismTest, NaiveParallelBitIdenticalToSerial) {
  const DetWorld& w = World();
  SearchOptions serial = Options(1);
  SearchOptions parallel = Options(8);
  PreparedSearch prep(*w.index, *w.graph, *w.sheet, serial);
  SearchResult a = RunNaive(prep, serial);
  SearchResult b = RunNaive(prep, parallel);
  ExpectIdenticalTopK(a, b, "naive-1v8");
  ExpectAllStatsEqual(a.stats, b.stats, "naive-1v8");
  // Session records merge in candidate order: identical too.
  ASSERT_EQ(a.evaluated.size(), b.evaluated.size());
  for (size_t i = 0; i < a.evaluated.size(); ++i) {
    EXPECT_EQ(a.evaluated[i].signature, b.evaluated[i].signature);
    EXPECT_EQ(a.evaluated[i].row_scores, b.evaluated[i].row_scores);
  }
}

TEST(DeterminismTest, BaselineParallelBitIdenticalToSerial) {
  const DetWorld& w = World();
  SearchOptions serial = Options(1);
  SearchOptions parallel = Options(8);
  PreparedSearch prep(*w.index, *w.graph, *w.sheet, serial);
  SearchResult a = RunBaseline(prep, serial);
  SearchResult b = RunBaseline(prep, parallel);
  ExpectIdenticalTopK(a, b, "baseline-1v8");
  // Speculative replay drops outcomes past the stop rank, so even the
  // Thm-1 minimal evaluation count survives parallelism exactly.
  ExpectAllStatsEqual(a.stats, b.stats, "baseline-1v8");
  ASSERT_EQ(a.evaluated.size(), b.evaluated.size());
}

TEST(DeterminismTest, FastTopKParallelMatchesSerialTopK) {
  const DetWorld& w = World();
  SearchOptions serial = Options(1);
  SearchOptions parallel = Options(8);
  PreparedSearch prep(*w.index, *w.graph, *w.sheet, serial);
  SearchResult a = RunFastTopK(prep, serial);
  SearchResult b = RunFastTopK(prep, parallel);
  // Frozen skip decisions can shift work between "evaluated" and
  // "skipped", but never change the returned queries or their scores.
  ASSERT_EQ(a.topk.size(), b.topk.size());
  for (size_t i = 0; i < a.topk.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.topk[i].score, b.topk[i].score) << "rank " << i;
  }
  EXPECT_EQ(a.stats.queries_enumerated, b.stats.queries_enumerated);
  EXPECT_EQ(a.stats.batches, b.stats.batches);
  // Prop 2 safety: parallel skipping never skips its way past work the
  // serial path had to do to certify the answer.
  EXPECT_LE(b.stats.queries_evaluated + b.stats.skipped_by_condition,
            a.stats.queries_enumerated);
}

}  // namespace
}  // namespace s4
