// Network-layer integration tests: a real S4Server on loopback driven by
// real sockets. The core claim is transparency — a networked client gets
// bit-identical results to an in-process S4Service caller — plus the
// protocol's failure-severity ladder (malformed payload survives the
// connection; framing violations close it; garbage closes it silently),
// disconnect-triggered cancellation, deadline mapping, backpressure as a
// retryable error, and the absence of fd leaks across all of it.
#include <chrono>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "net/client.h"
#include "net/server.h"
#include "net/socket_util.h"
#include "obs/metrics.h"
#include "service/s4_service.h"
#include "tests/test_util.h"

namespace s4::net {
namespace {

using Cells = std::vector<std::vector<std::string>>;

const S4System& System() {
  static const S4System& system = *[] {
    auto s = S4System::Create(testing::TpchDb());
    if (!s.ok()) abort();
    return s->release();
  }();
  return system;
}

std::vector<Cells> TestSheets() {
  return {
      {{"Rick", "USA", "Xbox"}, {"Julie", "", "iPhone"}, {"Kevin", "Canada", ""}},
      {{"Rick", "USA"}, {"Kevin", "Canada"}},
      {{"Julie", "iPhone"}, {"Rick", "Xbox"}},
      {{"Laptop", "USA"}, {"iPhone", "Canada"}},
  };
}

SearchOptions BaseOptions() {
  SearchOptions options;
  options.k = 5;
  // Fixed thread count: parallel block geometry (and thus tie handling)
  // must match between the in-process reference and the served request.
  options.num_threads = 2;
  return options;
}

// CountOpenFds / WaitFor live in tests/test_util.h now (shared with the
// dist fault suite).
using testing::CountOpenFds;
using testing::WaitFor;

// Reads one frame off a raw test socket.
Status ReadFrame(int fd, FrameHeader* h, std::string* payload,
                 double timeout = 10.0) {
  char header[kHeaderBytes];
  S4_RETURN_IF_ERROR(RecvAll(fd, header, kHeaderBytes, timeout));
  S4_RETURN_IF_ERROR(
      DecodeFrameHeader(std::string_view(header, kHeaderBytes), h));
  payload->resize(h->payload_len);
  if (h->payload_len > 0) {
    S4_RETURN_IF_ERROR(RecvAll(fd, payload->data(), h->payload_len, timeout));
  }
  return Status::OK();
}

// True when the peer has closed: the next read yields EOF (mapped to
// Internal "connection closed by peer") rather than data.
bool PeerClosed(int fd) {
  char byte;
  const Status st = RecvAll(fd, &byte, 1, 5.0);
  return !st.ok();
}

struct ServerHarness {
  std::unique_ptr<S4Service> service;
  std::unique_ptr<S4Server> server;

  explicit ServerHarness(ServerOptions sopts = {},
                         ServiceOptions service_opts = {}) {
    if (service_opts.num_workers == 2 && service_opts.max_queue == 64) {
      service_opts.num_workers = 4;
      service_opts.eval_threads = 4;
      service_opts.max_queue = 1024;
    }
    service = std::make_unique<S4Service>(System(), service_opts);
    server = std::make_unique<S4Server>(service.get(), sopts);
    const Status st = server->Start();
    if (!st.ok()) {
      ADD_FAILURE() << "server start: " << st;
      abort();
    }
  }

  ClientOptions MakeClientOptions() const {
    ClientOptions copts;
    copts.port = server->port();
    copts.request_timeout_seconds = 60.0;
    return copts;
  }

  StatusOr<UniqueFd> RawConnect() const {
    return ConnectWithTimeout("127.0.0.1", server->port(), 5.0);
  }
};

TEST(NetIntegrationTest, PingPong) {
  ServerHarness h;
  S4Client client(h.MakeClientOptions());
  EXPECT_TRUE(client.Ping().ok());
  EXPECT_TRUE(client.Ping().ok());  // pooled connection reused
}

// The acceptance-criteria test: 8 concurrent S4Clients, all strategies,
// must see bit-identical top-k (signatures and all four score channels)
// to the same requests issued in-process against the same service, and
// identical eval counts for the strategies whose work is deterministic
// under a shared cache (NAIVE, BASELINE; FASTTOPK's counts legitimately
// vary with cross-query cache state, see DESIGN.md).
TEST(NetIntegrationTest, EightClientsBitIdenticalToInProcess) {
  ServerHarness h;
  const std::vector<Cells> sheets = TestSheets();
  const std::vector<S4System::Strategy> strategies = {
      S4System::Strategy::kNaive, S4System::Strategy::kBaseline,
      S4System::Strategy::kFastTopK};
  const SearchOptions options = BaseOptions();

  // In-process references through the same S4Service.
  std::vector<std::vector<SearchResult>> refs(sheets.size());
  for (size_t s = 0; s < sheets.size(); ++s) {
    for (S4System::Strategy strategy : strategies) {
      ServiceRequest req;
      req.cells = sheets[s];
      req.options = options;
      req.strategy = strategy;
      auto ref = h.service->Search(std::move(req));
      ASSERT_TRUE(ref.ok()) << ref.status();
      refs[s].push_back(std::move(ref).value());
    }
  }

  constexpr int kClients = 8;
  const size_t per_client = sheets.size() * strategies.size();
  std::vector<std::vector<StatusOr<NetSearchResponse>>> got(
      kClients, std::vector<StatusOr<NetSearchResponse>>(
                    per_client, Status::Internal("unset")));
  std::vector<std::thread> threads;
  for (int c = 0; c < kClients; ++c) {
    threads.emplace_back([&, c] {
      S4Client client(h.MakeClientOptions());
      size_t slot = 0;
      for (size_t s = 0; s < sheets.size(); ++s) {
        for (size_t st = 0; st < strategies.size(); ++st) {
          const size_t sheet = (s + static_cast<size_t>(c)) % sheets.size();
          got[static_cast<size_t>(c)][slot++] = client.Search(
              NetSearchRequest::From(sheets[sheet], options,
                                     strategies[st]));
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();

  for (int c = 0; c < kClients; ++c) {
    size_t slot = 0;
    for (size_t s = 0; s < sheets.size(); ++s) {
      for (size_t st = 0; st < strategies.size(); ++st) {
        const size_t sheet = (s + static_cast<size_t>(c)) % sheets.size();
        const SearchResult& ref = refs[sheet][st];
        const auto& r = got[static_cast<size_t>(c)][slot++];
        ASSERT_TRUE(r.ok()) << r.status();
        ASSERT_EQ(r->topk.size(), ref.topk.size())
            << "client " << c << " sheet " << sheet << " strategy " << st;
        for (size_t i = 0; i < ref.topk.size(); ++i) {
          // Bit-identical: the doubles crossed the wire as raw IEEE-754
          // bit patterns.
          EXPECT_EQ(r->topk[i].signature, ref.topk[i].query.signature());
          EXPECT_EQ(r->topk[i].score, ref.topk[i].score);
          EXPECT_EQ(r->topk[i].upper_bound, ref.topk[i].upper_bound);
          EXPECT_EQ(r->topk[i].row_score, ref.topk[i].row_score);
          EXPECT_EQ(r->topk[i].column_score, ref.topk[i].column_score);
          EXPECT_EQ(r->topk[i].sql,
                    ref.topk[i].query.ToSql(System().db()));
        }
        if (strategies[st] != S4System::Strategy::kFastTopK) {
          EXPECT_EQ(r->queries_enumerated, ref.stats.queries_enumerated);
          EXPECT_EQ(r->queries_evaluated, ref.stats.queries_evaluated);
          EXPECT_EQ(r->query_row_evals, ref.stats.query_row_evals);
        }
        EXPECT_FALSE(r->interrupted);
      }
    }
  }
  EXPECT_EQ(h.server->counters().protocol_errors.load(), 0);
}

TEST(NetProtocolTest, MalformedPayloadGetsErrorConnectionSurvives) {
  ServerHarness h;
  auto fd = h.RawConnect();
  ASSERT_TRUE(fd.ok()) << fd.status();

  // A well-framed SearchRequest whose payload is garbage: the stream
  // stays in sync, so the server must answer and keep the connection.
  FrameHeader bad;
  bad.type = FrameType::kSearchRequest;
  bad.request_id = 99;
  const std::string garbage = "this is not a search request";
  bad.payload_len = static_cast<uint32_t>(garbage.size());
  std::string frame;
  AppendFrameHeader(bad, &frame);
  frame += garbage;
  ASSERT_TRUE(SendAll(fd->get(), frame.data(), frame.size(), 5.0).ok());

  FrameHeader reply;
  std::string payload;
  ASSERT_TRUE(ReadFrame(fd->get(), &reply, &payload).ok());
  EXPECT_EQ(reply.type, FrameType::kError);
  EXPECT_EQ(reply.request_id, 99u);
  NetError err;
  ASSERT_TRUE(DecodeError(payload, &err).ok());
  EXPECT_EQ(err.ToStatus().code(), StatusCode::kInvalidArgument);
  EXPECT_FALSE(err.retryable);

  // The same connection still serves a ping.
  const std::string ping = EncodePingFrame(100);
  ASSERT_TRUE(SendAll(fd->get(), ping.data(), ping.size(), 5.0).ok());
  ASSERT_TRUE(ReadFrame(fd->get(), &reply, &payload).ok());
  EXPECT_EQ(reply.type, FrameType::kPong);
  EXPECT_EQ(reply.request_id, 100u);
}

TEST(NetProtocolTest, GarbageStreamClosedWithoutResponse) {
  ServerHarness h;
  auto fd = h.RawConnect();
  ASSERT_TRUE(fd.ok()) << fd.status();
  const std::string garbage(64, 'x');  // no valid magic anywhere
  ASSERT_TRUE(SendAll(fd->get(), garbage.data(), garbage.size(), 5.0).ok());
  EXPECT_TRUE(PeerClosed(fd->get()));
  EXPECT_TRUE(WaitFor(
      [&] { return h.server->counters().protocol_errors.load() >= 1; }));
}

TEST(NetProtocolTest, VersionMismatchGetsErrorThenClose) {
  ServerHarness h;
  auto fd = h.RawConnect();
  ASSERT_TRUE(fd.ok()) << fd.status();
  std::string frame = EncodePingFrame(7);
  frame[4] = 99;  // version byte
  ASSERT_TRUE(SendAll(fd->get(), frame.data(), frame.size(), 5.0).ok());
  FrameHeader reply;
  std::string payload;
  ASSERT_TRUE(ReadFrame(fd->get(), &reply, &payload).ok());
  EXPECT_EQ(reply.type, FrameType::kError);
  EXPECT_EQ(reply.request_id, 7u);
  NetError err;
  ASSERT_TRUE(DecodeError(payload, &err).ok());
  EXPECT_EQ(err.ToStatus().code(), StatusCode::kFailedPrecondition);
  EXPECT_TRUE(PeerClosed(fd->get()));
}

TEST(NetProtocolTest, OversizedFrameGetsErrorThenClose) {
  ServerOptions sopts;
  sopts.max_frame_bytes = 1024;
  ServerHarness h(sopts);
  auto fd = h.RawConnect();
  ASSERT_TRUE(fd.ok()) << fd.status();
  FrameHeader big;
  big.type = FrameType::kSearchRequest;
  big.request_id = 13;
  big.payload_len = 1 << 20;  // over the 1 KiB limit; never actually sent
  std::string frame;
  AppendFrameHeader(big, &frame);
  ASSERT_TRUE(SendAll(fd->get(), frame.data(), frame.size(), 5.0).ok());
  FrameHeader reply;
  std::string payload;
  ASSERT_TRUE(ReadFrame(fd->get(), &reply, &payload).ok());
  EXPECT_EQ(reply.type, FrameType::kError);
  EXPECT_EQ(reply.request_id, 13u);
  NetError err;
  ASSERT_TRUE(DecodeError(payload, &err).ok());
  EXPECT_EQ(err.ToStatus().code(), StatusCode::kInvalidArgument);
  EXPECT_TRUE(PeerClosed(fd->get()));
}

TEST(NetProtocolTest, SlowLorisPartialFrameIdleClosed) {
  ServerOptions sopts;
  sopts.idle_timeout_seconds = 0.2;
  ServerHarness h(sopts);
  auto fd = h.RawConnect();
  ASSERT_TRUE(fd.ok()) << fd.status();
  // Half a header, then silence: the sweep must cut us off.
  const std::string frame = EncodePingFrame(1);
  ASSERT_TRUE(SendAll(fd->get(), frame.data(), kHeaderBytes / 2, 5.0).ok());
  EXPECT_TRUE(PeerClosed(fd->get()));
  EXPECT_TRUE(
      WaitFor([&] { return h.server->counters().idle_closes.load() >= 1; }));
}

TEST(NetProtocolTest, DeadlineExceededMapsToTypedStatus) {
  ServerHarness h;
  // Deterministic expiry, no wall-clock race: the service is paused, so
  // the request provably sits in the queue past its (tiny) deadline; the
  // resumer thread releases it only after admission, and the worker's
  // queued-expiry check then fails it with the typed status.
  h.service->Pause();
  std::thread resumer([&] {
    ASSERT_TRUE(WaitFor([&] { return h.service->stats().accepted >= 1; }));
    h.service->Resume();
  });
  S4Client client(h.MakeClientOptions());
  NetSearchRequest req = NetSearchRequest::From(
      TestSheets()[0], BaseOptions(), S4System::Strategy::kFastTopK,
      /*priority=*/0, /*deadline_seconds=*/1e-6);
  auto result = client.Search(req);
  resumer.join();
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kDeadlineExceeded);
  EXPECT_FALSE(IsRetryable(result.status().code()));
}

TEST(NetProtocolTest, BackpressureMapsToRetryableResourceExhausted) {
  ServiceOptions service_opts;
  service_opts.num_workers = 1;
  service_opts.max_queue = 1;
  ServerHarness h({}, service_opts);
  // Paused: admitted requests sit in the queue, so the second one in
  // flight is rejected at admission.
  h.service->Pause();
  auto fd = h.RawConnect();
  ASSERT_TRUE(fd.ok()) << fd.status();
  const NetSearchRequest req = NetSearchRequest::From(
      TestSheets()[1], BaseOptions(), S4System::Strategy::kBaseline);
  const std::string first = EncodeSearchRequestFrame(req, 1);
  const std::string second = EncodeSearchRequestFrame(req, 2);
  ASSERT_TRUE(SendAll(fd->get(), first.data(), first.size(), 5.0).ok());
  ASSERT_TRUE(SendAll(fd->get(), second.data(), second.size(), 5.0).ok());

  // The rejection comes back immediately while request 1 stays queued.
  FrameHeader reply;
  std::string payload;
  ASSERT_TRUE(ReadFrame(fd->get(), &reply, &payload).ok());
  EXPECT_EQ(reply.type, FrameType::kError);
  EXPECT_EQ(reply.request_id, 2u);
  NetError err;
  ASSERT_TRUE(DecodeError(payload, &err).ok());
  EXPECT_EQ(err.ToStatus().code(), StatusCode::kResourceExhausted);
  EXPECT_TRUE(err.retryable);

  // Resume; request 1 completes normally on the same connection.
  h.service->Resume();
  ASSERT_TRUE(ReadFrame(fd->get(), &reply, &payload).ok());
  EXPECT_EQ(reply.type, FrameType::kSearchResponse);
  EXPECT_EQ(reply.request_id, 1u);
  NetSearchResponse resp;
  EXPECT_TRUE(DecodeSearchResponse(payload, &resp).ok());
  EXPECT_GT(resp.topk.size(), 0u);
}

TEST(NetIntegrationTest, DisconnectCancelsInflightRequest) {
  ServiceOptions service_opts;
  service_opts.num_workers = 1;
  service_opts.max_queue = 8;
  ServerHarness h({}, service_opts);
  h.service->Pause();
  {
    auto fd = h.RawConnect();
    ASSERT_TRUE(fd.ok()) << fd.status();
    const std::string frame = EncodeSearchRequestFrame(
        NetSearchRequest::From(TestSheets()[0], BaseOptions(),
                               S4System::Strategy::kFastTopK),
        1);
    ASSERT_TRUE(SendAll(fd->get(), frame.data(), frame.size(), 5.0).ok());
    // Wait until the request is actually queued before disconnecting.
    ASSERT_TRUE(WaitFor([&] { return h.service->stats().accepted >= 1; }));
  }  // socket closes here, mid-request
  EXPECT_TRUE(WaitFor(
      [&] { return h.server->counters().disconnect_cancels.load() >= 1; }));
  h.service->Resume();
  // The worker observes the cancelled StopToken and finishes the request
  // as Cancelled; the completion finds the connection gone and is
  // dropped without crash.
  EXPECT_TRUE(WaitFor([&] { return h.service->stats().cancelled >= 1; }));
  EXPECT_TRUE(
      WaitFor([&] { return h.server->num_connections() == 0; }));
}

TEST(NetClientTest, PoolRecoversFromServerSideIdleClose) {
  ServerOptions sopts;
  sopts.idle_timeout_seconds = 0.15;
  ServerHarness h(sopts);
  S4Client client(h.MakeClientOptions());
  ASSERT_TRUE(client.Ping().ok());
  // Let the server idle-close the pooled connection, then search again:
  // the client must retry once on a fresh dial instead of failing.
  ASSERT_TRUE(
      WaitFor([&] { return h.server->counters().idle_closes.load() >= 1; }));
  auto result = client.Search(NetSearchRequest::From(
      TestSheets()[1], BaseOptions(), S4System::Strategy::kBaseline));
  EXPECT_TRUE(result.ok()) << result.status();
}

// Every error path above, then count fds: accepting, erroring, idling,
// disconnecting, and stopping must return every descriptor.
TEST(NetIntegrationTest, NoFdLeaksAcrossErrorPaths) {
  const int before = CountOpenFds();
  ASSERT_GT(before, 0);
  {
    ServerOptions sopts;
    sopts.idle_timeout_seconds = 0.2;
    ServerHarness h(sopts);
    S4Client client(h.MakeClientOptions());
    ASSERT_TRUE(client.Ping().ok());
    auto ok = client.Search(NetSearchRequest::From(
        TestSheets()[1], BaseOptions(), S4System::Strategy::kBaseline));
    EXPECT_TRUE(ok.ok()) << ok.status();
    {
      // Garbage stream -> server-side close.
      auto fd = h.RawConnect();
      ASSERT_TRUE(fd.ok());
      const std::string garbage(32, 'z');
      ASSERT_TRUE(
          SendAll(fd->get(), garbage.data(), garbage.size(), 5.0).ok());
      EXPECT_TRUE(PeerClosed(fd->get()));
    }
    {
      // Abrupt client disconnect with nothing in flight.
      auto fd = h.RawConnect();
      ASSERT_TRUE(fd.ok());
    }
    EXPECT_TRUE(WaitFor([&] {
      return h.server->counters().connections_closed.load() >= 2;
    }));
    h.server->Stop();
  }
  // Harness destroyed: every socket, epoll fd, and eventfd must be gone.
  EXPECT_TRUE(WaitFor([&] { return CountOpenFds() == before; }))
      << "fd count before=" << before << " after=" << CountOpenFds();
}

// --- observability wire surface (kStats / kTrace) ----------------------

// One traced search, then the two new frame types: kStatsRequest must
// return a Prometheus dump whose counters reflect the search, and
// kTraceRequest must return Chrome-trace JSON with the spans every layer
// is responsible for (net decode, Stage-I, Stage-II, cache probes).
TEST(NetTraceTest, StatsAndTraceRoundTripAfterSearch) {
  ServerOptions sopts;
  sopts.enable_tracing = true;
  ServerHarness h(sopts);
  S4Client client(h.MakeClientOptions());

  // Registry counters are process-global and other tests also search, so
  // assert on deltas.
  obs::MetricsSnapshot before = obs::MetricsRegistry::Global().Snapshot();

  uint64_t request_id = 0;
  auto result = client.Search(
      NetSearchRequest::From(TestSheets()[0], BaseOptions(),
                             S4System::Strategy::kFastTopK),
      &request_id);
  ASSERT_TRUE(result.ok()) << result.status();
  ASSERT_GT(request_id, 0u);

  auto stats = client.Stats();
  ASSERT_TRUE(stats.ok()) << stats.status();
  EXPECT_NE(stats->find("# TYPE s4_searches_total counter"),
            std::string::npos);
  EXPECT_NE(stats->find("s4_candidates_evaluated_total"),
            std::string::npos);
  EXPECT_NE(stats->find("s4_request_latency_seconds"), std::string::npos);
  EXPECT_NE(stats->find("s4_net_frames_received"), std::string::npos);

  obs::MetricsSnapshot after = obs::MetricsRegistry::Global().Snapshot();
  EXPECT_GE(after.Value("s4_searches_total"),
            before.Value("s4_searches_total") + 1);
  EXPECT_GE(after.Value("s4_candidates_evaluated_total"),
            before.Value("s4_candidates_evaluated_total") + 1);
  EXPECT_GE(after.Value("s4_cache_probe_hits_total") +
                after.Value("s4_cache_probe_misses_total"),
            before.Value("s4_cache_probe_hits_total") +
                before.Value("s4_cache_probe_misses_total") + 1);

  auto trace_json = client.FetchTrace(request_id);
  ASSERT_TRUE(trace_json.ok()) << trace_json.status();
  EXPECT_NE(trace_json->find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(trace_json->find("frame_decode"), std::string::npos);
  EXPECT_NE(trace_json->find("frame_encode"), std::string::npos);
  EXPECT_NE(trace_json->find("enumerate"), std::string::npos);
  EXPECT_NE(trace_json->find("evaluate_candidate"), std::string::npos);
  EXPECT_NE(trace_json->find("cache_probe"), std::string::npos);
  EXPECT_NE(trace_json->find("admission_queue_wait"), std::string::npos);
  // Export-time normalization: no negative timestamps even though the
  // frame_decode span was recorded before the trace epoch.
  EXPECT_EQ(trace_json->find("\"ts\":-"), std::string::npos);
}

TEST(NetTraceTest, UnknownTraceIdIsNotFoundAndKeepsConnection) {
  ServerOptions sopts;
  sopts.enable_tracing = true;
  ServerHarness h(sopts);
  S4Client client(h.MakeClientOptions());

  auto missing = client.FetchTrace(0xDEADBEEFull);
  ASSERT_FALSE(missing.ok());
  EXPECT_EQ(missing.status().code(), StatusCode::kNotFound);
  // Per-request miss, not a protocol violation: the stream survives.
  EXPECT_TRUE(client.Ping().ok());
  EXPECT_EQ(h.server->counters().protocol_errors.load(), 0);
}

TEST(NetTraceTest, TracingDisabledAnswersNotFound) {
  ServerHarness h;  // default options: tracing off
  S4Client client(h.MakeClientOptions());
  uint64_t request_id = 0;
  auto result = client.Search(
      NetSearchRequest::From(TestSheets()[1], BaseOptions(),
                             S4System::Strategy::kBaseline),
      &request_id);
  ASSERT_TRUE(result.ok()) << result.status();
  auto missing = client.FetchTrace(request_id);
  ASSERT_FALSE(missing.ok());
  EXPECT_EQ(missing.status().code(), StatusCode::kNotFound);
}

TEST(NetTraceTest, TraceHistoryEvictsOldestFirst) {
  ServerOptions sopts;
  sopts.enable_tracing = true;
  sopts.trace_history = 2;
  ServerHarness h(sopts);
  S4Client client(h.MakeClientOptions());

  std::vector<uint64_t> ids;
  for (int i = 0; i < 3; ++i) {
    uint64_t id = 0;
    auto result = client.Search(
        NetSearchRequest::From(TestSheets()[1], BaseOptions(),
                               S4System::Strategy::kBaseline),
        &id);
    ASSERT_TRUE(result.ok()) << result.status();
    ids.push_back(id);
  }
  // Oldest fell out of the 2-entry ring; the two newest are servable.
  auto oldest = client.FetchTrace(ids[0]);
  EXPECT_FALSE(oldest.ok());
  EXPECT_EQ(oldest.status().code(), StatusCode::kNotFound);
  EXPECT_TRUE(client.FetchTrace(ids[1]).ok());
  EXPECT_TRUE(client.FetchTrace(ids[2]).ok());
}

TEST(NetTraceTest, StatsWorkWithoutAnySearch) {
  ServerHarness h;
  S4Client client(h.MakeClientOptions());
  auto stats = client.Stats();
  ASSERT_TRUE(stats.ok()) << stats.status();
  // Service/pool/net gauges are registered by the scrape itself.
  EXPECT_NE(stats->find("s4_service_queue_depth"), std::string::npos);
  EXPECT_NE(stats->find("s4_net_open_connections"), std::string::npos);
}

}  // namespace
}  // namespace s4::net
