// Sub-PJ query cache: LRU replacement, budget enforcement, pinning,
// byte accounting, and sharded concurrent access.
#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "cache/subquery_cache.h"

namespace s4 {
namespace {

std::shared_ptr<SubQueryTable> MakeTable(int32_t keys, int32_t es_rows = 3) {
  auto t = std::make_shared<SubQueryTable>();
  t->num_es_rows = es_rows;
  bool fresh = false;
  for (int32_t i = 0; i < keys; ++i) {
    double* row = t->UpsertScored(i, &fresh);
    for (int32_t e = 0; e < es_rows; ++e) row[e] = 1.0;
  }
  return t;
}

TEST(SubQueryTableTest, FindSemantics) {
  SubQueryTable t;
  t.num_es_rows = 2;
  bool fresh = false;
  t.UpsertScored(1, &fresh)[0] = 1.0;
  EXPECT_TRUE(fresh);
  EXPECT_TRUE(t.InsertZero(2));
  EXPECT_FALSE(t.InsertZero(2));  // already present
  bool exists = false;
  const double* row = t.Find(1, &exists);
  ASSERT_NE(row, nullptr);
  EXPECT_TRUE(exists);
  EXPECT_DOUBLE_EQ(row[0], 1.0);
  EXPECT_DOUBLE_EQ(row[1], 0.0);  // fresh rows are zero-filled
  EXPECT_EQ(t.Find(2, &exists), nullptr);
  EXPECT_TRUE(exists);
  EXPECT_EQ(t.Find(3, &exists), nullptr);
  EXPECT_FALSE(exists);
  EXPECT_EQ(t.NumKeys(), 2);
  EXPECT_EQ(t.NumScored(), 1);
  EXPECT_EQ(t.NumZero(), 1);
  EXPECT_GT(t.ByteSize(), 0u);
}

TEST(SubQueryTableTest, ZeroKeyPromotion) {
  SubQueryTable t;
  t.num_es_rows = 2;
  EXPECT_TRUE(t.InsertZero(7));
  bool fresh = false;
  double* row = t.UpsertScored(7, &fresh);  // promote zero -> scored
  EXPECT_TRUE(fresh);
  row[1] = 3.5;
  EXPECT_FALSE(t.InsertZero(7));  // scored keys are never demoted
  bool exists = false;
  const double* found = t.Find(7, &exists);
  ASSERT_NE(found, nullptr);
  EXPECT_TRUE(exists);
  EXPECT_DOUBLE_EQ(found[1], 3.5);
  EXPECT_EQ(t.NumKeys(), 1);
  EXPECT_EQ(t.NumScored(), 1);
}

TEST(SubQueryCacheTest, AddGetRemove) {
  SubQueryCache cache(1u << 20);
  auto t = MakeTable(10);
  EXPECT_TRUE(cache.Add("k1", t));
  EXPECT_TRUE(cache.Contains("k1"));
  EXPECT_NE(cache.Get("k1"), nullptr);
  EXPECT_EQ(cache.Get("k2"), nullptr);
  EXPECT_EQ(cache.stats().hits, 1);
  EXPECT_EQ(cache.stats().misses, 1);
  cache.Remove("k1");
  EXPECT_FALSE(cache.Contains("k1"));
  EXPECT_EQ(cache.bytes_used(), 0u);
}

TEST(SubQueryCacheTest, BudgetRejectsOversized) {
  auto t = MakeTable(100);
  SubQueryCache cache(t->ByteSize() / 2);
  EXPECT_FALSE(cache.Add("big", t));
  EXPECT_EQ(cache.stats().rejected_too_large, 1);
  EXPECT_EQ(cache.NumEntries(), 0);
}

TEST(SubQueryCacheTest, LruEviction) {
  auto t = MakeTable(50);
  const size_t each = t->ByteSize();
  SubQueryCache cache(each * 2 + each / 2);  // fits two entries
  EXPECT_TRUE(cache.Add("a", MakeTable(50)));
  EXPECT_TRUE(cache.Add("b", MakeTable(50)));
  // Touch "a" so "b" is the LRU victim.
  EXPECT_NE(cache.Get("a"), nullptr);
  EXPECT_TRUE(cache.Add("c", MakeTable(50)));
  EXPECT_TRUE(cache.Contains("a"));
  EXPECT_FALSE(cache.Contains("b"));
  EXPECT_TRUE(cache.Contains("c"));
  EXPECT_EQ(cache.stats().evictions, 1);
}

TEST(SubQueryCacheTest, PinnedEntriesSurviveEviction) {
  auto probe = MakeTable(50);
  const size_t each = probe->ByteSize();
  SubQueryCache cache(each * 2 + each / 2);
  EXPECT_TRUE(cache.Add("pinned", MakeTable(50), /*pinned=*/true));
  EXPECT_TRUE(cache.Add("b", MakeTable(50)));
  EXPECT_TRUE(cache.Add("c", MakeTable(50)));  // evicts b, not pinned
  EXPECT_TRUE(cache.Contains("pinned"));
  EXPECT_FALSE(cache.Contains("b"));

  // With everything pinned, a new Add fails rather than evicting.
  SubQueryCache cache2(each + each / 2);
  EXPECT_TRUE(cache2.Add("p1", MakeTable(50), /*pinned=*/true));
  EXPECT_FALSE(cache2.Add("x", MakeTable(50)));
  cache2.Unpin("p1");
  EXPECT_TRUE(cache2.Add("x", MakeTable(50)));
  EXPECT_FALSE(cache2.Contains("p1"));
}

TEST(SubQueryCacheTest, ReinsertReplaces) {
  SubQueryCache cache(1u << 20);
  EXPECT_TRUE(cache.Add("k", MakeTable(10)));
  const size_t before = cache.bytes_used();
  EXPECT_TRUE(cache.Add("k", MakeTable(20)));
  EXPECT_EQ(cache.NumEntries(), 1);
  EXPECT_GT(cache.bytes_used(), before);
}

TEST(SubQueryCacheTest, ClearResetsBytes) {
  SubQueryCache cache(1u << 20);
  cache.Add("a", MakeTable(5));
  cache.Add("b", MakeTable(5));
  cache.Clear();
  EXPECT_EQ(cache.NumEntries(), 0);
  EXPECT_EQ(cache.bytes_used(), 0u);
  EXPECT_GT(cache.stats().peak_bytes, 0u);
}

TEST(SubQueryCacheTest, SharedPtrSurvivesEviction) {
  auto t = MakeTable(50);
  const size_t each = t->ByteSize();
  SubQueryCache cache(each + each / 2);
  cache.Add("a", t);
  std::shared_ptr<const SubQueryTable> held = cache.Get("a");
  cache.Add("b", MakeTable(50));  // evicts "a"
  ASSERT_NE(held, nullptr);
  EXPECT_EQ(held->NumScored(), 50);  // still usable
}

// ByteSize() is exact: slot arrays at capacity plus the arena
// allocation, nothing estimated.
TEST(SubQueryTableTest, ByteSizeIsExact) {
  auto t = MakeTable(200, /*es_rows=*/5);
  EXPECT_EQ(t->ByteSize(), sizeof(SubQueryTable) + t->keys.ByteSize() +
                               t->arena.capacity() * sizeof(double));
  // The slot arrays alone account for capacity * 12 bytes.
  EXPECT_EQ(t->keys.ByteSize(), t->keys.capacity() * FlatMap64::kSlotBytes);

  // Growing only the key table (no new entries) must grow ByteSize.
  SubQueryTable sparse;
  sparse.num_es_rows = 3;
  bool fresh = false;
  sparse.UpsertScored(1, &fresh);
  const size_t before = sparse.ByteSize();
  sparse.Reserve(4096);
  EXPECT_GE(sparse.ByteSize(), before + 4096 * FlatMap64::kSlotBytes -
                                   16 * FlatMap64::kSlotBytes);
}

TEST(SubQueryCacheTest, BudgetHonoredWithCapacityOverhead) {
  // An over-reserved but sparse table must be charged for its slot
  // capacity: a budget sized to its payload alone has to reject it.
  auto sparse = std::make_shared<SubQueryTable>();
  sparse->num_es_rows = 3;
  bool fresh = false;
  for (int32_t i = 0; i < 4; ++i) {
    double* row = sparse->UpsertScored(i, &fresh);
    row[0] = 1.0;
  }
  sparse->Reserve(1u << 16);
  const size_t payload_only =
      sizeof(SubQueryTable) +
      sparse->NumScored() * (FlatMap64::kSlotBytes + 3 * sizeof(double));
  SubQueryCache cache(payload_only * 2);
  EXPECT_FALSE(cache.Add("sparse", sparse));
  EXPECT_EQ(cache.stats().rejected_too_large, 1);
}

TEST(ShardedCacheTest, ShardsForThreads) {
  EXPECT_EQ(SubQueryCache::ShardsForThreads(0), 1);
  EXPECT_EQ(SubQueryCache::ShardsForThreads(1), 1);
  EXPECT_GT(SubQueryCache::ShardsForThreads(4), 1);
  EXPECT_LE(SubQueryCache::ShardsForThreads(1024), 64);
}

TEST(ShardedCacheTest, BasicOpsAcrossShards) {
  SubQueryCache cache(8u << 20, /*num_shards=*/8);
  EXPECT_EQ(cache.num_shards(), 8);
  for (int i = 0; i < 64; ++i) {
    EXPECT_TRUE(cache.Add("key" + std::to_string(i), MakeTable(5)));
  }
  EXPECT_EQ(cache.NumEntries(), 64);
  for (int i = 0; i < 64; ++i) {
    EXPECT_NE(cache.Get("key" + std::to_string(i)), nullptr);
  }
  EXPECT_EQ(cache.stats().hits, 64);
  EXPECT_EQ(cache.stats().insertions, 64);
  cache.Remove("key0");
  EXPECT_FALSE(cache.Contains("key0"));
  EXPECT_EQ(cache.NumEntries(), 63);
  cache.Clear();
  EXPECT_EQ(cache.NumEntries(), 0);
  EXPECT_EQ(cache.bytes_used(), 0u);
}

TEST(ShardedCacheTest, PinnedSurvivesCrossShardPressure) {
  auto probe = MakeTable(50);
  const size_t each = probe->ByteSize();
  SubQueryCache cache(each * 3 + each / 2, /*num_shards=*/8);
  EXPECT_TRUE(cache.Add("pinned", MakeTable(50), /*pinned=*/true));
  // Overflow the global budget from many shards; the pinned entry must
  // never be the victim.
  for (int i = 0; i < 20; ++i) {
    EXPECT_TRUE(cache.Add("filler" + std::to_string(i), MakeTable(50)));
  }
  EXPECT_TRUE(cache.Contains("pinned"));
  EXPECT_LE(cache.bytes_used(), cache.budget());
  EXPECT_GT(cache.stats().evictions, 0);
}

TEST(ShardedCacheTest, ConcurrentSameKeyAddKeepsOneEntry) {
  SubQueryCache cache(8u << 20, /*num_shards=*/8);
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&cache] {
      for (int i = 0; i < 50; ++i) {
        cache.Add("same-key", MakeTable(10));
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(cache.NumEntries(), 1);
  EXPECT_EQ(cache.bytes_used(), MakeTable(10)->ByteSize());
  ASSERT_NE(cache.Get("same-key"), nullptr);
}

TEST(SubQueryCacheTest, ConcurrentStatsSnapshotIsRaceFree) {
  // Regression test for the stats() aggregation path: shard counters
  // must be read under the shard mutex, never bare. Run under tsan this
  // catches any unsynchronized read; under plain builds it checks that
  // concurrent snapshots stay monotone and end exact.
  SubQueryCache cache(1 << 20, /*num_shards=*/4);
  constexpr int kWriters = 4;
  constexpr int kOpsPerWriter = 2000;
  std::atomic<bool> done{false};

  std::vector<std::thread> threads;
  std::atomic<int64_t> snapshots_taken{0};
  threads.emplace_back([&cache, &done, &snapshots_taken] {
    int64_t last_probes = 0;
    while (!done.load(std::memory_order_acquire)) {
      const CacheStats s = cache.stats();
      const int64_t probes = s.hits + s.misses;
      // Counters only ever increase; a torn read would show a decrease.
      EXPECT_GE(probes, last_probes);
      EXPECT_GE(s.insertions, 0);
      last_probes = probes;
      snapshots_taken.fetch_add(1, std::memory_order_relaxed);
    }
  });
  for (int t = 0; t < kWriters; ++t) {
    threads.emplace_back([&cache, t] {
      for (int i = 0; i < kOpsPerWriter; ++i) {
        const std::string key =
            "k" + std::to_string(t) + "_" + std::to_string(i % 64);
        if (cache.Get(key) == nullptr) {
          cache.Add(key, MakeTable(4));
        }
      }
    });
  }
  for (size_t t = 1; t < threads.size(); ++t) threads[t].join();
  done.store(true, std::memory_order_release);
  threads[0].join();

  EXPECT_GT(snapshots_taken.load(), 0);
  const CacheStats final_stats = cache.stats();
  // Quiescent totals are exact: every Get recorded a hit or a miss.
  EXPECT_EQ(final_stats.hits + final_stats.misses,
            kWriters * kOpsPerWriter);
  EXPECT_EQ(final_stats.insertions, final_stats.misses);
}

TEST(ShardedCacheTest, ConcurrentHammerStaysWithinBudget) {
  // 8 threads hammer a small cache with mixed Add/Get/Remove across a
  // shared key space, forcing constant cross-shard eviction.
  auto probe = MakeTable(20);
  const size_t budget = probe->ByteSize() * 12;
  SubQueryCache cache(budget, /*num_shards=*/8);
  constexpr int kThreads = 8;
  constexpr int kOpsPerThread = 400;
  constexpr int kKeySpace = 48;
  std::atomic<int64_t> gets{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kOpsPerThread; ++i) {
        const std::string key =
            "k" + std::to_string((t * 31 + i * 7) % kKeySpace);
        switch (i % 4) {
          case 0:
          case 1:
            cache.Add(key, MakeTable(20));
            break;
          case 2: {
            cache.Get(key);
            gets.fetch_add(1);
            break;
          }
          default:
            if (i % 16 == 3) {
              cache.Remove(key);
            } else {
              cache.Contains(key);
            }
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  // Quiescent invariants: the budget held, byte accounting balances,
  // and the shard-local stats add up.
  EXPECT_LE(cache.bytes_used(), budget);
  CacheStats stats = cache.stats();
  EXPECT_EQ(stats.hits + stats.misses, gets.load());
  EXPECT_GT(stats.evictions, 0);
  EXPECT_GE(stats.peak_bytes, cache.bytes_used());
  size_t recount = 0;
  for (int i = 0; i < kKeySpace; ++i) {
    auto table = cache.Get("k" + std::to_string(i));
    if (table != nullptr) recount += table->ByteSize();
  }
  EXPECT_EQ(recount, cache.bytes_used());
}

}  // namespace
}  // namespace s4
