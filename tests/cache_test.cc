// Sub-PJ query cache: LRU replacement, budget enforcement, pinning.
#include <gtest/gtest.h>

#include "cache/subquery_cache.h"

namespace s4 {
namespace {

std::shared_ptr<SubQueryTable> MakeTable(int32_t keys, int32_t es_rows = 3) {
  auto t = std::make_shared<SubQueryTable>();
  t->num_es_rows = es_rows;
  for (int32_t i = 0; i < keys; ++i) {
    t->scored.emplace(i, std::vector<double>(es_rows, 1.0));
  }
  return t;
}

TEST(SubQueryTableTest, FindSemantics) {
  SubQueryTable t;
  t.num_es_rows = 2;
  t.scored.emplace(1, std::vector<double>{1.0, 0.0});
  t.zero.insert(2);
  bool exists = false;
  EXPECT_NE(t.Find(1, &exists), nullptr);
  EXPECT_TRUE(exists);
  EXPECT_EQ(t.Find(2, &exists), nullptr);
  EXPECT_TRUE(exists);
  EXPECT_EQ(t.Find(3, &exists), nullptr);
  EXPECT_FALSE(exists);
  EXPECT_EQ(t.NumKeys(), 2);
  EXPECT_GT(t.ByteSize(), 0u);
}

TEST(SubQueryCacheTest, AddGetRemove) {
  SubQueryCache cache(1u << 20);
  auto t = MakeTable(10);
  EXPECT_TRUE(cache.Add("k1", t));
  EXPECT_TRUE(cache.Contains("k1"));
  EXPECT_NE(cache.Get("k1"), nullptr);
  EXPECT_EQ(cache.Get("k2"), nullptr);
  EXPECT_EQ(cache.stats().hits, 1);
  EXPECT_EQ(cache.stats().misses, 1);
  cache.Remove("k1");
  EXPECT_FALSE(cache.Contains("k1"));
  EXPECT_EQ(cache.bytes_used(), 0u);
}

TEST(SubQueryCacheTest, BudgetRejectsOversized) {
  auto t = MakeTable(100);
  SubQueryCache cache(t->ByteSize() / 2);
  EXPECT_FALSE(cache.Add("big", t));
  EXPECT_EQ(cache.stats().rejected_too_large, 1);
  EXPECT_EQ(cache.NumEntries(), 0);
}

TEST(SubQueryCacheTest, LruEviction) {
  auto t = MakeTable(50);
  const size_t each = t->ByteSize();
  SubQueryCache cache(each * 2 + each / 2);  // fits two entries
  EXPECT_TRUE(cache.Add("a", MakeTable(50)));
  EXPECT_TRUE(cache.Add("b", MakeTable(50)));
  // Touch "a" so "b" is the LRU victim.
  EXPECT_NE(cache.Get("a"), nullptr);
  EXPECT_TRUE(cache.Add("c", MakeTable(50)));
  EXPECT_TRUE(cache.Contains("a"));
  EXPECT_FALSE(cache.Contains("b"));
  EXPECT_TRUE(cache.Contains("c"));
  EXPECT_EQ(cache.stats().evictions, 1);
}

TEST(SubQueryCacheTest, PinnedEntriesSurviveEviction) {
  auto probe = MakeTable(50);
  const size_t each = probe->ByteSize();
  SubQueryCache cache(each * 2 + each / 2);
  EXPECT_TRUE(cache.Add("pinned", MakeTable(50), /*pinned=*/true));
  EXPECT_TRUE(cache.Add("b", MakeTable(50)));
  EXPECT_TRUE(cache.Add("c", MakeTable(50)));  // evicts b, not pinned
  EXPECT_TRUE(cache.Contains("pinned"));
  EXPECT_FALSE(cache.Contains("b"));

  // With everything pinned, a new Add fails rather than evicting.
  SubQueryCache cache2(each + each / 2);
  EXPECT_TRUE(cache2.Add("p1", MakeTable(50), /*pinned=*/true));
  EXPECT_FALSE(cache2.Add("x", MakeTable(50)));
  cache2.Unpin("p1");
  EXPECT_TRUE(cache2.Add("x", MakeTable(50)));
  EXPECT_FALSE(cache2.Contains("p1"));
}

TEST(SubQueryCacheTest, ReinsertReplaces) {
  SubQueryCache cache(1u << 20);
  EXPECT_TRUE(cache.Add("k", MakeTable(10)));
  const size_t before = cache.bytes_used();
  EXPECT_TRUE(cache.Add("k", MakeTable(20)));
  EXPECT_EQ(cache.NumEntries(), 1);
  EXPECT_GT(cache.bytes_used(), before);
}

TEST(SubQueryCacheTest, ClearResetsBytes) {
  SubQueryCache cache(1u << 20);
  cache.Add("a", MakeTable(5));
  cache.Add("b", MakeTable(5));
  cache.Clear();
  EXPECT_EQ(cache.NumEntries(), 0);
  EXPECT_EQ(cache.bytes_used(), 0u);
  EXPECT_GT(cache.stats().peak_bytes, 0u);
}

TEST(SubQueryCacheTest, SharedPtrSurvivesEviction) {
  auto t = MakeTable(50);
  const size_t each = t->ByteSize();
  SubQueryCache cache(each + each / 2);
  cache.Add("a", t);
  std::shared_ptr<const SubQueryTable> held = cache.Get("a");
  cache.Add("b", MakeTable(50));  // evicts "a"
  ASSERT_NE(held, nullptr);
  EXPECT_EQ(held->scored.size(), 50u);  // still usable
}

}  // namespace
}  // namespace s4
