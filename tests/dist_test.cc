// Distributed scatter-gather differential suite: across randomly
// generated schemas, an S4Coordinator over N in-process shard servers
// (real loopback sockets, real wire frames) must return bit-identical
// top-k — signatures AND scores — to a single-node S4System::Search
// over the full candidate space, for N in {1, 2, 4}, every strategy,
// 20 seeds. Also pins down the sharding invariant: the per-shard slice
// sizes sum to the single-node enumeration count (disjoint + covering).
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "common/string_util.h"
#include "datagen/random_schema.h"
#include "dist/coordinator.h"
#include "net/server.h"
#include "net/wire.h"
#include "s4/s4.h"
#include "service/s4_service.h"
#include "strategy/strategy.h"
#include "tests/test_util.h"

namespace s4::dist {
namespace {

using Cells = std::vector<std::vector<std::string>>;

// N shard servers over one S4System, every one admission-locked to its
// slice, plus a coordinator wired to all of them.
struct DistHarness {
  std::vector<std::unique_ptr<S4Service>> services;
  std::vector<std::unique_ptr<net::S4Server>> servers;
  std::unique_ptr<S4Coordinator> coordinator;

  DistHarness(const S4System& system, int32_t shard_count,
              CoordinatorOptions copts = {}) {
    for (int32_t i = 0; i < shard_count; ++i) {
      ServiceOptions sopts;
      sopts.num_workers = 2;
      sopts.max_queue = 32;
      sopts.shard_count = shard_count;
      sopts.shard_index = i;
      services.push_back(std::make_unique<S4Service>(system, sopts));
      servers.push_back(
          std::make_unique<net::S4Server>(services.back().get()));
      const Status st = servers.back()->Start();
      if (!st.ok()) {
        ADD_FAILURE() << "shard " << i << ": " << st;
        abort();
      }
      copts.shards.push_back({"127.0.0.1", servers.back()->port()});
    }
    coordinator = std::make_unique<S4Coordinator>(std::move(copts));
  }
};

// Strict bit-identity: signatures and raw score bits at every rank.
void ExpectBitIdentical(const SearchResult& ref,
                        const DistSearchResult& got,
                        const std::string& label) {
  ASSERT_EQ(ref.topk.size(), got.topk.size()) << label;
  for (size_t i = 0; i < ref.topk.size(); ++i) {
    EXPECT_EQ(ref.topk[i].query.signature(), got.topk[i].signature)
        << label << " rank " << i;
    EXPECT_EQ(ref.topk[i].score, got.topk[i].score)
        << label << " rank " << i;
    EXPECT_EQ(ref.topk[i].upper_bound, got.topk[i].upper_bound)
        << label << " rank " << i;
  }
}

class DistDifferentialTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(DistDifferentialTest, CoordinatorBitIdenticalToSingleNode) {
  const uint64_t seed = GetParam();
  datagen::RandomSchemaOptions opts;
  opts.seed = seed;
  opts.num_tables = 4 + static_cast<int32_t>(seed % 4);
  auto db = datagen::MakeRandomSchema(opts);
  ASSERT_TRUE(db.ok()) << db.status();
  auto system = S4System::Create(*db);
  ASSERT_TRUE(system.ok()) << system.status();

  // Random spreadsheet over the generator's shared vocabulary (the
  // differential_test idiom).
  Rng rng(seed * 131 + 7);
  Cells cells(2);
  for (auto& row : cells) {
    for (int c = 0; c < 2; ++c) {
      std::string cell = StrFormat(
          "w%lld", static_cast<long long>(rng.Uniform(opts.vocab_size)));
      if (rng.Bernoulli(0.4)) {
        cell += StrFormat(
            " w%lld",
            static_cast<long long>(rng.Uniform(opts.vocab_size)));
      }
      row.push_back(cell);
    }
  }

  SearchOptions options;
  options.k = 5;
  options.enumeration.max_tree_size = 3;
  options.enumeration.max_queries = 4000;
  // Fixed thread count: parallel block geometry (and thus tie handling)
  // must match between the reference and every shard.
  options.num_threads = 2;

  const std::vector<S4System::Strategy> strategies = {
      S4System::Strategy::kNaive, S4System::Strategy::kBaseline,
      S4System::Strategy::kFastTopK};

  // Single-node references over the full candidate space.
  std::vector<SearchResult> refs;
  for (S4System::Strategy strategy : strategies) {
    auto ref = (*system)->Search(cells, options, strategy);
    ASSERT_TRUE(ref.ok()) << ref.status();
    refs.push_back(std::move(ref).value());
  }

  for (int32_t shard_count : {1, 2, 4}) {
    DistHarness h(**system, shard_count);
    for (size_t st = 0; st < strategies.size(); ++st) {
      const std::string label = StrFormat(
          "seed=%llu N=%d strategy=%d",
          static_cast<unsigned long long>(seed), shard_count,
          static_cast<int>(st));
      auto got = h.coordinator->Search(
          net::NetSearchRequest::From(cells, options, strategies[st]));
      ASSERT_TRUE(got.ok()) << label << ": " << got.status();
      EXPECT_TRUE(got->complete) << label;
      EXPECT_TRUE(got->unreached_shards.empty()) << label;
      ExpectBitIdentical(refs[st], *got, label);

      // The slices are disjoint and covering: per-shard enumeration
      // counts sum to the single-node count.
      EXPECT_EQ(got->queries_enumerated, refs[st].stats.queries_enumerated)
          << label;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DistDifferentialTest,
                         ::testing::Range<uint64_t>(1, 21));

// The candidate-space partition itself: every signature lands on
// exactly one shard, and the assignment is stable.
TEST(DistShardingTest, ShardOfSignatureIsStableAndInRange) {
  for (int32_t n : {1, 2, 4, 16, 1024}) {
    for (int i = 0; i < 200; ++i) {
      const std::string sig = StrFormat("J(T%d)P(%d.c)", i % 7, i);
      const int32_t shard = ShardOfSignature(sig, n);
      EXPECT_GE(shard, 0);
      EXPECT_LT(shard, n);
      EXPECT_EQ(shard, ShardOfSignature(sig, n)) << "unstable assignment";
    }
  }
  // shard_count == 1 short-circuits to slice 0.
  EXPECT_EQ(ShardOfSignature("anything", 1), 0);
}

// Shard-aware admission: a service locked to slice 2-of-4 must reject a
// request targeting any other slice with FailedPrecondition, loudly.
TEST(DistShardingTest, MisroutedSliceRejectedAtAdmission) {
  const S4System& system = *[] {
    auto s = S4System::Create(s4::testing::TpchDb());
    if (!s.ok()) abort();
    return s->release();
  }();
  ServiceOptions sopts;
  sopts.shard_count = 4;
  sopts.shard_index = 2;
  S4Service service(system, sopts);

  auto submit = [&](int32_t count, int32_t index) {
    ServiceRequest req;
    req.cells = {{"Rick", "USA"}};
    req.options.k = 3;
    req.options.shard_count = count;
    req.options.shard_index = index;
    auto ticket = service.Submit(std::move(req));
    if (!ticket.ok()) return ticket.status();
    return ticket->result.get().status();
  };

  EXPECT_EQ(submit(4, 2).code(), StatusCode::kOk);
  EXPECT_EQ(submit(4, 1).code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(submit(2, 0).code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(submit(1, 0).code(), StatusCode::kFailedPrecondition);
}

// End-to-end observability across the fleet: a traced+profiled search
// over real loopback shards must come back with (a) one ShardProfile
// row per shard whose work counters reconcile with the merged response
// counters, and (b) a stitched timeline where every shard's wire-carried
// segment appears as its own process, re-parented under the
// coordinator's scatter span, with no negative timestamps.
TEST(DistTraceStitchTest, StitchesShardSegmentsAndMergesProfiles) {
  auto sys = S4System::Create(s4::testing::TpchDb());
  ASSERT_TRUE(sys.ok()) << sys.status();
  const S4System& system = **sys;
  constexpr int32_t kShards = 2;
  CoordinatorOptions copts;
  copts.enable_tracing = true;
  DistHarness h(system, kShards, std::move(copts));

  SearchOptions options;
  options.k = 3;
  auto request = net::NetSearchRequest::From(
      {{"Rick", "USA"}}, options, S4System::Strategy::kFastTopK);
  request.want_profile = true;
  auto got = h.coordinator->Search(request);
  ASSERT_TRUE(got.ok()) << got.status();
  ASSERT_TRUE(got->complete);

  // Per-request accounting, merged across the fleet.
  ASSERT_EQ(got->profile.shards.size(), static_cast<size_t>(kShards));
  EXPECT_EQ(got->profile.candidates_enumerated, got->queries_enumerated);
  EXPECT_EQ(got->profile.candidates_evaluated, got->queries_evaluated);
  EXPECT_GT(got->profile.total_seconds, 0.0);
  int64_t enumerated = 0;
  for (const auto& row : got->profile.shards) {
    EXPECT_FALSE(row.lost);
    enumerated += row.enumerated;
  }
  EXPECT_EQ(enumerated, got->queries_enumerated);

  // Stitched timeline: coordinator spans plus one process per shard.
  auto trace = h.coordinator->last_trace();
  ASSERT_NE(trace, nullptr);
  EXPECT_TRUE(trace->HasSpan("merge"));
  EXPECT_TRUE(trace->HasSpan("shard_exchange"));
  for (int32_t i = 0; i < kShards; ++i) {
    EXPECT_GT(trace->NumSpansForPid(2 + static_cast<uint32_t>(i)), 0u)
        << "no stitched spans for shard " << i;
  }
  const std::string json = trace->ToChromeJson();
  EXPECT_NE(json.find("\"shard 0\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"shard 1\""), std::string::npos) << json;
  EXPECT_NE(json.find("frame_decode"), std::string::npos) << json;
  EXPECT_EQ(json.find("\"ts\":-"), std::string::npos) << json;
}

}  // namespace
}  // namespace s4::dist
