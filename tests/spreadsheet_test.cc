// Example spreadsheet (Def 1) and resolution tests.
#include <gtest/gtest.h>

#include "query/spreadsheet.h"
#include "tests/test_util.h"

namespace s4 {
namespace {

using testing::TpchIndex;

Tokenizer Tok() { return Tokenizer(); }

TEST(SpreadsheetTest, FromCellsAndAccessors) {
  auto s = ExampleSpreadsheet::FromCells(
      {{"Rick", "USA Xbox"}, {"", "iPhone"}}, Tok());
  ASSERT_TRUE(s.ok());
  EXPECT_EQ(s->NumRows(), 2);
  EXPECT_EQ(s->NumColumns(), 2);
  EXPECT_EQ(s->cell(0, 1).terms,
            (std::vector<std::string>{"usa", "xbox"}));
  EXPECT_TRUE(s->cell(1, 0).empty());
  EXPECT_EQ(s->ColumnTerms(1),
            (std::vector<std::string>{"usa", "xbox", "iphone"}));
  EXPECT_EQ(s->TotalTerms(), 4);
  EXPECT_TRUE(s->Validate().ok());
}

TEST(SpreadsheetTest, RejectsMalformedShapes) {
  EXPECT_FALSE(ExampleSpreadsheet::FromCells({}, Tok()).ok());
  EXPECT_FALSE(ExampleSpreadsheet::FromCells({{}}, Tok()).ok());
  EXPECT_FALSE(
      ExampleSpreadsheet::FromCells({{"a", "b"}, {"c"}}, Tok()).ok());
}

TEST(SpreadsheetTest, ValidateRequiresTermsPerRowAndColumn) {
  auto empty_row =
      ExampleSpreadsheet::FromCells({{"a", "b"}, {"", ""}}, Tok());
  ASSERT_TRUE(empty_row.ok());
  EXPECT_FALSE(empty_row->Validate().ok());

  auto empty_col = ExampleSpreadsheet::FromCells({{"a", ""}, {"b", ""}},
                                                 Tok());
  ASSERT_TRUE(empty_col.ok());
  EXPECT_FALSE(empty_col->Validate().ok());
}

TEST(SpreadsheetTest, WithCellRetokenizes) {
  auto s = ExampleSpreadsheet::FromCells({{"Rick", "USA"}}, Tok());
  ASSERT_TRUE(s.ok());
  ExampleSpreadsheet t = s->WithCell(0, 0, "Kevin Chen", Tok());
  EXPECT_EQ(t.cell(0, 0).terms,
            (std::vector<std::string>{"kevin", "chen"}));
  EXPECT_EQ(t.ColumnTerms(0),
            (std::vector<std::string>{"kevin", "chen"}));
  // Original untouched.
  EXPECT_EQ(s->cell(0, 0).terms, (std::vector<std::string>{"rick"}));
}

TEST(SpreadsheetTest, ChangedRows) {
  auto a = ExampleSpreadsheet::FromCells({{"x"}, {"y"}, {"z"}}, Tok());
  ASSERT_TRUE(a.ok());
  ExampleSpreadsheet b = a->WithCell(1, 0, "w", Tok());
  EXPECT_EQ(b.ChangedRows(*a), (std::vector<int32_t>{1}));
  EXPECT_TRUE(a->ChangedRows(*a).empty());

  auto shorter = ExampleSpreadsheet::FromCells({{"x"}}, Tok());
  ASSERT_TRUE(shorter.ok());
  EXPECT_EQ(a->ChangedRows(*shorter), (std::vector<int32_t>{1, 2}));
}

TEST(SpreadsheetTest, ToStringShowsGrid) {
  auto s = ExampleSpreadsheet::FromCells({{"a", "b"}}, Tok());
  ASSERT_TRUE(s.ok());
  EXPECT_EQ(s->ToString(), "a | b\n");
}

TEST(ResolvedSpreadsheetTest, DropsUnknownTermsButCountsThem) {
  auto s = ExampleSpreadsheet::FromCells({{"Rick zzzznot"}},
                                         TpchIndex().tokenizer());
  ASSERT_TRUE(s.ok());
  ResolvedSpreadsheet r =
      ResolvedSpreadsheet::Resolve(*s, TpchIndex().dict());
  EXPECT_EQ(r.cell_terms[0][0].size(), 1u);   // only 'rick' known
  EXPECT_EQ(r.cell_num_terms[0][0], 2);       // raw count keeps both
  EXPECT_EQ(r.column_terms[0].size(), 1u);
}

TEST(ResolvedSpreadsheetTest, DeduplicatesColumnTerms) {
  auto s = ExampleSpreadsheet::FromCells({{"Rick"}, {"rick"}},
                                         TpchIndex().tokenizer());
  ASSERT_TRUE(s.ok());
  ResolvedSpreadsheet r =
      ResolvedSpreadsheet::Resolve(*s, TpchIndex().dict());
  EXPECT_EQ(r.column_terms[0].size(), 1u);
}

}  // namespace
}  // namespace s4
