#ifndef S4_TESTS_TEST_UTIL_H_
#define S4_TESTS_TEST_UTIL_H_

#include <algorithm>
#include <memory>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "datagen/tpch_mini.h"
#include "index/index_set.h"
#include "query/pj_query.h"
#include "query/spreadsheet.h"
#include "schema/schema_graph.h"
#include "score/score_model.h"

namespace s4::testing {

// Builds the Figure-1 database once per process.
inline const Database& TpchDb() {
  static const Database& db = *new Database([] {
    auto d = datagen::MakeTpchMini();
    if (!d.ok()) abort();
    return std::move(d).value();
  }());
  return db;
}

inline const IndexSet& TpchIndex() {
  static const IndexSet& index = *[] {
    auto i = IndexSet::Build(TpchDb());
    if (!i.ok()) abort();
    return i->release();
  }();
  return index;
}

inline const SchemaGraph& TpchGraph() {
  static const SchemaGraph& g = *new SchemaGraph(TpchDb());
  return g;
}

// The example spreadsheet of Figure 2(a).
inline ExampleSpreadsheet Fig2aSheet(const IndexSet& index) {
  auto sheet = ExampleSpreadsheet::FromCells(
      {
          {"Rick", "USA", "Xbox"},
          {"Julie", "", "iPhone"},
          {"Kevin", "Canada", ""},
      },
      index.tokenizer());
  if (!sheet.ok()) abort();
  return std::move(sheet).value();
}

// Reference implementation of the row-containment components
// score(t | Q) by explicit enumeration of all join-output rows —
// exponential but exact; used to validate the hash-join evaluator.
// Supports the base scoring model (no idf / exact-match bonus).
class BruteForceEvaluator {
 public:
  BruteForceEvaluator(const IndexSet& index, const ExampleSpreadsheet& sheet)
      : index_(&index), sheet_(&sheet) {}

  std::vector<double> RowScores(const PJQuery& q) {
    const JoinTree& tree = q.tree();
    std::vector<double> best(sheet_->NumRows(), 0.0);
    std::vector<int64_t> rows(tree.size(), -1);
    Assign(q, tree, 0, &rows, &best);
    return best;
  }

 private:
  // Distinct terms of the example cell found in the database cell.
  double CellSim(const std::string& cell_raw, TableId table, int64_t row,
                 int32_t col) const {
    const Table& t = index_->db().table(table);
    if (t.IsNull(row, col)) return 0.0;
    std::vector<std::string> db_tokens =
        index_->tokenizer().Tokenize(t.GetText(row, col));
    std::unordered_set<std::string> db_set(db_tokens.begin(),
                                           db_tokens.end());
    double sim = 0.0;
    for (const std::string& term :
         index_->tokenizer().TokenizeUnique(cell_raw)) {
      if (db_set.count(term) > 0) sim += 1.0;
    }
    return sim;
  }

  void Score(const PJQuery& q, const std::vector<int64_t>& rows,
             std::vector<double>* best) const {
    for (int32_t t = 0; t < sheet_->NumRows(); ++t) {
      double total = 0.0;
      for (const ProjectionBinding& b : q.bindings()) {
        const auto& cell = sheet_->cell(t, b.es_column);
        if (cell.empty()) continue;
        total += CellSim(cell.raw, q.tree().node(b.node).table,
                         rows[b.node], b.column);
      }
      (*best)[t] = std::max((*best)[t], total);
    }
  }

  void Assign(const PJQuery& q, const JoinTree& tree, TreeNodeId v,
              std::vector<int64_t>* rows, std::vector<double>* best) {
    const Database& db = index_->db();
    const KfkSnapshot& snap = index_->snapshot();
    const TableId table = tree.node(v).table;
    auto descend = [&](int64_t row) {
      (*rows)[v] = row;
      // Verify the join predicate with the parent.
      if (v != tree.root()) {
        const JoinTree::Node& n = tree.node(v);
        const int64_t parent_row = (*rows)[n.parent];
        const TableId parent_table = tree.node(n.parent).table;
        int64_t fk, pk;
        if (n.parent_holds_fk) {
          if (!snap.FkValid(n.edge_to_parent, parent_row)) return;
          fk = snap.Fk(n.edge_to_parent)[parent_row];
          pk = snap.Pk(table)[row];
        } else {
          if (!snap.FkValid(n.edge_to_parent, row)) return;
          fk = snap.Fk(n.edge_to_parent)[row];
          pk = snap.Pk(parent_table)[parent_row];
        }
        if (fk != pk) return;
      }
      if (v + 1 == tree.size()) {
        Score(q, *rows, best);
      } else {
        Assign(q, tree, v + 1, rows, best);
      }
    };
    for (int64_t r = 0; r < db.table(table).NumRows(); ++r) descend(r);
  }

  const IndexSet* index_;
  const ExampleSpreadsheet* sheet_;
};

}  // namespace s4::testing

#endif  // S4_TESTS_TEST_UTIL_H_
