#ifndef S4_TESTS_TEST_UTIL_H_
#define S4_TESTS_TEST_UTIL_H_

#include <dirent.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/fd.h"
#include "datagen/tpch_mini.h"
#include "index/index_set.h"
#include "net/socket_util.h"
#include "net/wire.h"
#include "query/pj_query.h"
#include "query/spreadsheet.h"
#include "schema/schema_graph.h"
#include "score/score_model.h"

namespace s4::testing {

// Builds the Figure-1 database once per process.
inline const Database& TpchDb() {
  static const Database& db = *new Database([] {
    auto d = datagen::MakeTpchMini();
    if (!d.ok()) abort();
    return std::move(d).value();
  }());
  return db;
}

inline const IndexSet& TpchIndex() {
  static const IndexSet& index = *[] {
    auto i = IndexSet::Build(TpchDb());
    if (!i.ok()) abort();
    return i->release();
  }();
  return index;
}

inline const SchemaGraph& TpchGraph() {
  static const SchemaGraph& g = *new SchemaGraph(TpchDb());
  return g;
}

// The example spreadsheet of Figure 2(a).
inline ExampleSpreadsheet Fig2aSheet(const IndexSet& index) {
  auto sheet = ExampleSpreadsheet::FromCells(
      {
          {"Rick", "USA", "Xbox"},
          {"Julie", "", "iPhone"},
          {"Kevin", "Canada", ""},
      },
      index.tokenizer());
  if (!sheet.ok()) abort();
  return std::move(sheet).value();
}

// Reference implementation of the row-containment components
// score(t | Q) by explicit enumeration of all join-output rows —
// exponential but exact; used to validate the hash-join evaluator.
// Supports the base scoring model (no idf / exact-match bonus).
class BruteForceEvaluator {
 public:
  BruteForceEvaluator(const IndexSet& index, const ExampleSpreadsheet& sheet)
      : index_(&index), sheet_(&sheet) {}

  std::vector<double> RowScores(const PJQuery& q) {
    const JoinTree& tree = q.tree();
    std::vector<double> best(sheet_->NumRows(), 0.0);
    std::vector<int64_t> rows(tree.size(), -1);
    Assign(q, tree, 0, &rows, &best);
    return best;
  }

 private:
  // Distinct terms of the example cell found in the database cell.
  double CellSim(const std::string& cell_raw, TableId table, int64_t row,
                 int32_t col) const {
    const Table& t = index_->db().table(table);
    if (t.IsNull(row, col)) return 0.0;
    std::vector<std::string> db_tokens =
        index_->tokenizer().Tokenize(t.GetText(row, col));
    std::unordered_set<std::string> db_set(db_tokens.begin(),
                                           db_tokens.end());
    double sim = 0.0;
    for (const std::string& term :
         index_->tokenizer().TokenizeUnique(cell_raw)) {
      if (db_set.count(term) > 0) sim += 1.0;
    }
    return sim;
  }

  void Score(const PJQuery& q, const std::vector<int64_t>& rows,
             std::vector<double>* best) const {
    for (int32_t t = 0; t < sheet_->NumRows(); ++t) {
      double total = 0.0;
      for (const ProjectionBinding& b : q.bindings()) {
        const auto& cell = sheet_->cell(t, b.es_column);
        if (cell.empty()) continue;
        total += CellSim(cell.raw, q.tree().node(b.node).table,
                         rows[b.node], b.column);
      }
      (*best)[t] = std::max((*best)[t], total);
    }
  }

  void Assign(const PJQuery& q, const JoinTree& tree, TreeNodeId v,
              std::vector<int64_t>* rows, std::vector<double>* best) {
    const Database& db = index_->db();
    const KfkSnapshot& snap = index_->snapshot();
    const TableId table = tree.node(v).table;
    auto descend = [&](int64_t row) {
      (*rows)[v] = row;
      // Verify the join predicate with the parent.
      if (v != tree.root()) {
        const JoinTree::Node& n = tree.node(v);
        const int64_t parent_row = (*rows)[n.parent];
        const TableId parent_table = tree.node(n.parent).table;
        int64_t fk, pk;
        if (n.parent_holds_fk) {
          if (!snap.FkValid(n.edge_to_parent, parent_row)) return;
          fk = snap.Fk(n.edge_to_parent)[parent_row];
          pk = snap.Pk(table)[row];
        } else {
          if (!snap.FkValid(n.edge_to_parent, row)) return;
          fk = snap.Fk(n.edge_to_parent)[row];
          pk = snap.Pk(parent_table)[parent_row];
        }
        if (fk != pk) return;
      }
      if (v + 1 == tree.size()) {
        Score(q, *rows, best);
      } else {
        Assign(q, tree, v + 1, rows, best);
      }
    };
    for (int64_t r = 0; r < db.table(table).NumRows(); ++r) descend(r);
  }

  const IndexSet* index_;
  const ExampleSpreadsheet* sheet_;
};

// --- fault-injection / polling helpers (net + dist suites) -------------

// Open descriptors of this process, excluding the enumeration itself.
// Leak checks snapshot before and compare after teardown.
inline int CountOpenFds() {
  DIR* dir = opendir("/proc/self/fd");
  if (dir == nullptr) return -1;
  int n = 0;
  while (readdir(dir) != nullptr) ++n;
  closedir(dir);
  return n - 3;  // ".", "..", and the dirfd itself
}

// Waits until `pred` holds or ~2 s pass (loop-thread effects like
// connection-close bookkeeping are asynchronous).
template <typename Pred>
bool WaitFor(Pred pred) {
  for (int i = 0; i < 400; ++i) {
    if (pred()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  return pred();
}

// Frame-aware TCP proxy in front of a real shard server, injecting one
// of the classic partial-failure modes into the first
// `fail_connections` connections (later ones relay transparently, so a
// coordinator retry lands on a clean path):
//
//   kDropMidRequest  read part of the request, then close abruptly —
//                    the coordinator sees a transport error;
//   kBlackhole       swallow the request and never answer — the
//                    coordinator's deadline is the only way out;
//   kErrorOnNthFrame relay the exchange but replace the Nth
//                    backend frame with a retryable ResourceExhausted
//                    error and cut the connection — admission
//                    backpressure at stream time.
//
// One handler thread per connection; Stop() (also the destructor)
// shuts every socket down and joins.
class FaultyShard {
 public:
  enum class Fault { kNone, kDropMidRequest, kBlackhole, kErrorOnNthFrame };
  struct Options {
    Fault fault = Fault::kNone;
    int fail_connections = 1;  // connections the fault applies to
    int error_frame = 1;       // 1-based backend frame to replace
  };

  FaultyShard(uint16_t backend_port, Options opts)
      : backend_port_(backend_port), opts_(opts) {
    auto listener = net::Listen("127.0.0.1", 0);
    if (!listener.ok()) abort();
    listen_fd_ = std::move(*listener);
    auto port = net::LocalPort(listen_fd_.get());
    if (!port.ok()) abort();
    port_ = *port;
    acceptor_ = std::thread([this] { AcceptLoop(); });
  }

  ~FaultyShard() { Stop(); }

  uint16_t port() const { return port_; }
  int connections_seen() const {
    return connections_.load(std::memory_order_relaxed);
  }

  void Stop() {
    if (stop_.exchange(true)) return;
    if (acceptor_.joinable()) acceptor_.join();
    {
      // Unblock handler threads stuck in a read.
      std::lock_guard<std::mutex> lock(mu_);
      for (int fd : live_fds_) ::shutdown(fd, SHUT_RDWR);
    }
    for (std::thread& t : handlers_) t.join();
    handlers_.clear();
  }

 private:
  void Track(int fd) {
    std::lock_guard<std::mutex> lock(mu_);
    live_fds_.push_back(fd);
  }
  void Untrack(int fd) {
    std::lock_guard<std::mutex> lock(mu_);
    live_fds_.erase(std::remove(live_fds_.begin(), live_fds_.end(), fd),
                    live_fds_.end());
  }

  void AcceptLoop() {
    while (!stop_.load(std::memory_order_acquire)) {
      pollfd p{listen_fd_.get(), POLLIN, 0};
      if (::poll(&p, 1, 50) <= 0) continue;
      const int raw = ::accept(listen_fd_.get(), nullptr, nullptr);
      if (raw < 0) continue;
      const int index =
          connections_.fetch_add(1, std::memory_order_relaxed);
      std::lock_guard<std::mutex> lock(mu_);
      handlers_.emplace_back(
          [this, raw, index] { Handle(UniqueFd(raw), index); });
    }
  }

  // Reads one whole frame (header + payload). False on any failure.
  static bool ReadWholeFrame(int fd, std::string* frame) {
    frame->resize(net::kHeaderBytes);
    if (!net::RecvAll(fd, frame->data(), net::kHeaderBytes, 10.0).ok()) {
      return false;
    }
    net::FrameHeader h;
    if (!net::DecodeFrameHeader(*frame, &h).ok()) return false;
    if (h.payload_len > net::kDefaultMaxFrameBytes) return false;
    const size_t total = net::kHeaderBytes + h.payload_len;
    frame->resize(total);
    return h.payload_len == 0 ||
           net::RecvAll(fd, frame->data() + net::kHeaderBytes, h.payload_len,
                        10.0)
               .ok();
  }

  void Handle(UniqueFd client, int index) {
    Track(client.get());
    const Fault fault =
        index < opts_.fail_connections ? opts_.fault : Fault::kNone;

    if (fault == Fault::kDropMidRequest) {
      // Read half a header, then vanish.
      char junk[net::kHeaderBytes / 2];
      (void)net::RecvAll(client.get(), junk, sizeof(junk), 10.0);
      Untrack(client.get());
      return;
    }

    std::string request;
    if (!ReadWholeFrame(client.get(), &request)) {
      Untrack(client.get());
      return;
    }

    if (fault == Fault::kBlackhole) {
      // Hold the connection open, answering nothing, until the peer
      // gives up (its deadline) or the proxy is stopped.
      char scratch[256];
      while (!stop_.load(std::memory_order_acquire)) {
        pollfd p{client.get(), POLLIN, 0};
        if (::poll(&p, 1, 50) <= 0) continue;
        const ssize_t n = ::recv(client.get(), scratch, sizeof(scratch), 0);
        if (n <= 0) break;  // peer closed / errored
      }
      Untrack(client.get());
      return;
    }

    auto backend =
        net::ConnectWithTimeout("127.0.0.1", backend_port_, 5.0);
    if (!backend.ok()) {
      Untrack(client.get());
      return;
    }
    Track(backend->get());
    if (!net::SendAll(backend->get(), request.data(), request.size(), 10.0)
             .ok()) {
      Untrack(backend->get());
      Untrack(client.get());
      return;
    }

    // Blind pump client -> backend (stop frames must keep flowing).
    std::thread pump([this, cfd = client.get(), bfd = backend->get()] {
      char buf[4096];
      while (!stop_.load(std::memory_order_acquire)) {
        pollfd p{cfd, POLLIN, 0};
        if (::poll(&p, 1, 50) <= 0) continue;
        const ssize_t n = ::recv(cfd, buf, sizeof(buf), 0);
        if (n <= 0) break;
        if (!net::SendAll(bfd, buf, static_cast<size_t>(n), 5.0).ok()) break;
      }
    });

    // Frame-aware relay backend -> client with optional injection.
    int frame_index = 0;
    std::string frame;
    while (ReadWholeFrame(backend->get(), &frame)) {
      ++frame_index;
      if (fault == Fault::kErrorOnNthFrame &&
          frame_index == opts_.error_frame) {
        net::FrameHeader h;
        (void)net::DecodeFrameHeader(frame, &h);
        const std::string error = net::EncodeErrorFrame(
            Status::ResourceExhausted("injected shard backpressure"),
            h.request_id);
        (void)net::SendAll(client.get(), error.data(), error.size(), 5.0);
        break;  // cut both sides: the retry must use a new connection
      }
      if (!net::SendAll(client.get(), frame.data(), frame.size(), 10.0)
               .ok()) {
        break;
      }
    }
    // Closing the sockets unblocks the pump; shutdown first so a
    // blocked recv returns.
    ::shutdown(client.get(), SHUT_RDWR);
    ::shutdown(backend->get(), SHUT_RDWR);
    pump.join();
    Untrack(backend->get());
    Untrack(client.get());
  }

  const uint16_t backend_port_;
  const Options opts_;
  UniqueFd listen_fd_;
  uint16_t port_ = 0;
  std::thread acceptor_;
  std::atomic<bool> stop_{false};
  std::atomic<int> connections_{0};
  std::mutex mu_;
  std::vector<std::thread> handlers_;
  std::vector<int> live_fds_;
};

}  // namespace s4::testing

#endif  // S4_TESTS_TEST_UTIL_H_
