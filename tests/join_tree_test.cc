// JoinTree structure, canonicalization, and sub-tree extraction tests.
#include <gtest/gtest.h>

#include "schema/join_tree.h"
#include "tests/test_util.h"

namespace s4 {
namespace {

using testing::TpchDb;
using testing::TpchGraph;

// Finds the schema edge src -> dst by table names.
SchemaEdgeId EdgeBetween(const std::string& src, const std::string& dst) {
  const SchemaGraph& g = TpchGraph();
  for (SchemaEdgeId e = 0; e < g.NumEdges(); ++e) {
    if (TpchDb().table(g.edge(e).src).name() == src &&
        TpchDb().table(g.edge(e).dst).name() == dst) {
      return e;
    }
  }
  return -1;
}

TableId TableByName(const std::string& name) {
  return TpchDb().FindTable(name)->id();
}

// LineItem -> {Orders -> Customer -> Nation, Part}: the join tree of
// Figure 2(b)-(i).
JoinTree Fig2iTree() {
  JoinTree t = JoinTree::Single(TableByName("LineItem"));
  TreeNodeId orders = t.AddChild(0, TpchGraph(),
                                 EdgeBetween("LineItem", "Orders"),
                                 EdgeDir::kForward);
  TreeNodeId cust = t.AddChild(orders, TpchGraph(),
                               EdgeBetween("Orders", "Customer"),
                               EdgeDir::kForward);
  t.AddChild(cust, TpchGraph(), EdgeBetween("Customer", "Nation"),
             EdgeDir::kForward);
  t.AddChild(0, TpchGraph(), EdgeBetween("LineItem", "Part"),
             EdgeDir::kForward);
  return t;
}

TEST(JoinTreeTest, BasicStructure) {
  JoinTree t = Fig2iTree();
  EXPECT_EQ(t.size(), 5);
  EXPECT_EQ(t.ChildrenOf(0).size(), 2u);   // Orders, Part
  EXPECT_EQ(t.Degree(0), 2);
  EXPECT_EQ(t.Degree(1), 2);               // Orders: LineItem + Customer
  EXPECT_EQ(t.Leaves().size(), 2u);        // Nation, Part
  EXPECT_TRUE(t.ContainsTable(TableByName("Nation")));
  EXPECT_FALSE(t.ContainsTable(TableByName("Supplier")));
}

TEST(JoinTreeTest, AddChildDirections) {
  // Backward traversal: Nation -> Customer (Customer holds the FK).
  JoinTree t = JoinTree::Single(TableByName("Nation"));
  TreeNodeId cust = t.AddChild(0, TpchGraph(),
                               EdgeBetween("Customer", "Nation"),
                               EdgeDir::kBackward);
  EXPECT_EQ(t.node(cust).table, TableByName("Customer"));
  EXPECT_FALSE(t.node(cust).parent_holds_fk);

  // Forward: Customer -> Nation (parent holds the FK).
  JoinTree t2 = JoinTree::Single(TableByName("Customer"));
  TreeNodeId nation = t2.AddChild(0, TpchGraph(),
                                  EdgeBetween("Customer", "Nation"),
                                  EdgeDir::kForward);
  EXPECT_TRUE(t2.node(nation).parent_holds_fk);
}

TEST(JoinTreeTest, UnrootedSignatureInvariantToConstructionOrder) {
  // Build the same undirected tree from two different starting points.
  JoinTree a = JoinTree::Single(TableByName("Customer"));
  a.AddChild(0, TpchGraph(), EdgeBetween("Customer", "Nation"),
             EdgeDir::kForward);
  a.AddChild(0, TpchGraph(), EdgeBetween("Orders", "Customer"),
             EdgeDir::kBackward);

  JoinTree b = JoinTree::Single(TableByName("Nation"));
  TreeNodeId cust = b.AddChild(0, TpchGraph(),
                               EdgeBetween("Customer", "Nation"),
                               EdgeDir::kBackward);
  b.AddChild(cust, TpchGraph(), EdgeBetween("Orders", "Customer"),
             EdgeDir::kBackward);

  std::vector<std::string> empty_a(a.size()), empty_b(b.size());
  EXPECT_EQ(a.UnrootedSignature(empty_a), b.UnrootedSignature(empty_b));
  // Rooted signatures differ (different roots).
  EXPECT_NE(a.RootedSignature(empty_a), b.RootedSignature(empty_b));
}

TEST(JoinTreeTest, CanonicalizeProducesIdenticalLayout) {
  JoinTree a = JoinTree::Single(TableByName("Customer"));
  a.AddChild(0, TpchGraph(), EdgeBetween("Customer", "Nation"),
             EdgeDir::kForward);
  a.AddChild(0, TpchGraph(), EdgeBetween("Orders", "Customer"),
             EdgeDir::kBackward);

  JoinTree b = JoinTree::Single(TableByName("Orders"));
  TreeNodeId cust = b.AddChild(0, TpchGraph(),
                               EdgeBetween("Orders", "Customer"),
                               EdgeDir::kForward);
  b.AddChild(cust, TpchGraph(), EdgeBetween("Customer", "Nation"),
             EdgeDir::kForward);

  std::vector<TreeNodeId> remap_a, remap_b;
  JoinTree ca = a.Canonicalize(std::vector<std::string>(a.size()), &remap_a);
  JoinTree cb = b.Canonicalize(std::vector<std::string>(b.size()), &remap_b);
  EXPECT_EQ(ca.RootedSignature(std::vector<std::string>(ca.size())),
            cb.RootedSignature(std::vector<std::string>(cb.size())));
  for (TreeNodeId v = 0; v < ca.size(); ++v) {
    EXPECT_EQ(ca.node(v).table, cb.node(v).table);
    EXPECT_EQ(ca.node(v).parent, cb.node(v).parent);
  }
  // Remaps are permutations.
  for (TreeNodeId v = 0; v < a.size(); ++v) {
    EXPECT_GE(remap_a[v], 0);
    EXPECT_LT(remap_a[v], a.size());
  }
}

TEST(JoinTreeTest, AnnotationsDistinguishMappings) {
  JoinTree t = JoinTree::Single(TableByName("Customer"));
  t.AddChild(0, TpchGraph(), EdgeBetween("Customer", "Nation"),
             EdgeDir::kForward);
  std::vector<std::string> ann1{"m1:0", ""};
  std::vector<std::string> ann2{"m1:1", ""};
  EXPECT_NE(t.RootedSignature(ann1), t.RootedSignature(ann2));
  EXPECT_NE(t.UnrootedSignature(ann1), t.UnrootedSignature(ann2));
}

TEST(JoinTreeTest, RootedSubtree) {
  JoinTree t = Fig2iTree();
  // Subtree at Orders: Orders -> Customer -> Nation.
  std::vector<TreeNodeId> remap;
  JoinTree sub = t.RootedSubtree(1, &remap);
  EXPECT_EQ(sub.size(), 3);
  EXPECT_EQ(sub.node(0).table, TableByName("Orders"));
  EXPECT_EQ(sub.node(0).parent, kNoNode);
  EXPECT_EQ(remap[1], 0);
  EXPECT_EQ(remap[0], kNoNode);  // LineItem not in subtree
  // FK orientation preserved.
  EXPECT_TRUE(sub.node(1).parent_holds_fk);
}

TEST(JoinTreeTest, SubtreeWithParent) {
  JoinTree t = Fig2iTree();
  // Subtree at Customer (node 2) plus parent Orders, Orders as root with
  // the single child Customer.
  std::vector<TreeNodeId> remap;
  JoinTree sub = t.SubtreeWithParent(2, &remap);
  EXPECT_EQ(sub.size(), 3);  // Orders, Customer, Nation
  EXPECT_EQ(sub.node(0).table, TableByName("Orders"));
  EXPECT_EQ(sub.ChildrenOf(0).size(), 1u);
  EXPECT_EQ(sub.node(1).table, TableByName("Customer"));
}

TEST(JoinTreeTest, DescendantsOf) {
  JoinTree t = Fig2iTree();
  EXPECT_EQ(t.DescendantsOf(0).size(), 5u);
  EXPECT_EQ(t.DescendantsOf(1).size(), 3u);  // Orders, Customer, Nation
  EXPECT_EQ(t.DescendantsOf(4).size(), 1u);  // Part leaf
}

TEST(JoinTreeTest, FromNodesRoundTrip) {
  JoinTree t = Fig2iTree();
  JoinTree copy = JoinTree::FromNodes(
      std::vector<JoinTree::Node>(t.nodes().begin(), t.nodes().end()));
  std::vector<std::string> empty(t.size());
  EXPECT_EQ(copy.RootedSignature(empty), t.RootedSignature(empty));
}

TEST(JoinTreeTest, ToStringMentionsAllTables) {
  JoinTree t = Fig2iTree();
  std::string s = t.ToString(TpchDb());
  for (const char* name :
       {"LineItem", "Orders", "Customer", "Nation", "Part"}) {
    EXPECT_NE(s.find(name), std::string::npos) << name;
  }
}

}  // namespace
}  // namespace s4
