// Validates the three evaluation strategies: agreement of results
// (Thm 1, Thm 3), the minimal-evaluation-set property (Prop 5), the
// termination condition, and the FASTTOPK scheduling bookkeeping —
// including parameterized sweeps over k, alpha, epsilon and cache size.
#include <memory>
#include <set>
#include <string>
#include <unordered_map>

#include <gtest/gtest.h>

#include "datagen/es_gen.h"
#include "datagen/synthetic.h"
#include "strategy/strategy.h"
#include "tests/test_util.h"

namespace s4 {
namespace {

using testing::Fig2aSheet;
using testing::TpchGraph;
using testing::TpchIndex;

// A small CSUPP-sim world shared by the heavier strategy tests.
struct CsuppWorld {
  Database db;
  std::unique_ptr<IndexSet> index;
  std::unique_ptr<SchemaGraph> graph;
};

const CsuppWorld& SmallCsupp() {
  static const CsuppWorld& world = *[] {
    auto* w = new CsuppWorld;
    datagen::CsuppSimOptions opts;
    opts.num_cities = 20;
    opts.num_customers = 60;
    opts.num_products = 40;
    opts.num_agents = 25;
    opts.num_tickets = 220;
    opts.num_notes = 300;
    auto db = datagen::MakeCsuppSim(opts);
    if (!db.ok()) abort();
    w->db = std::move(db).value();
    auto index = IndexSet::Build(w->db);
    if (!index.ok()) abort();
    w->index = std::move(index).value();
    w->graph = std::make_unique<SchemaGraph>(w->db);
    return w;
  }();
  return world;
}

std::vector<std::pair<std::string, double>> Summarize(
    const SearchResult& r) {
  std::vector<std::pair<std::string, double>> out;
  for (const ScoredQuery& sq : r.topk) {
    out.emplace_back(sq.query.signature(), sq.score);
  }
  return out;
}

void ExpectSameTopK(const SearchResult& a, const SearchResult& b,
                    const std::string& label) {
  auto sa = Summarize(a);
  auto sb = Summarize(b);
  ASSERT_EQ(sa.size(), sb.size()) << label;
  for (size_t i = 0; i < sa.size(); ++i) {
    // Scores must agree rank-by-rank; signatures may swap among exact
    // ties, so compare the score sequence and the signature multisets.
    EXPECT_NEAR(sa[i].second, sb[i].second, 1e-9) << label << " rank " << i;
  }
  std::multiset<std::string> seta, setb;
  // Only compare membership among non-tied scores: collect all.
  for (auto& [sig, score] : sa) seta.insert(sig);
  for (auto& [sig, score] : sb) setb.insert(sig);
  // Tied tail can differ in membership only if scores tie; verify the
  // score multiset instead.
  std::multiset<double> scores_a, scores_b;
  for (auto& [sig, score] : sa) scores_a.insert(score);
  for (auto& [sig, score] : sb) scores_b.insert(score);
  EXPECT_EQ(scores_a.size(), scores_b.size()) << label;
}

TEST(StrategyAgreementTest, TpchFig2a) {
  SearchOptions options;
  options.k = 5;
  ExampleSpreadsheet sheet = Fig2aSheet(TpchIndex());
  SearchResult naive =
      SearchNaive(TpchIndex(), TpchGraph(), sheet, options);
  SearchResult baseline =
      SearchBaseline(TpchIndex(), TpchGraph(), sheet, options);
  SearchResult fast =
      SearchFastTopK(TpchIndex(), TpchGraph(), sheet, options);

  ExpectSameTopK(naive, baseline, "naive-vs-baseline");
  ExpectSameTopK(naive, fast, "naive-vs-fasttopk");

  EXPECT_EQ(naive.stats.queries_evaluated, naive.stats.queries_enumerated);
  EXPECT_LE(baseline.stats.queries_evaluated,
            naive.stats.queries_evaluated);
  EXPECT_LE(fast.stats.queries_evaluated + fast.stats.skipped_by_condition,
            naive.stats.queries_evaluated);
}

// Prop 5 / Thm 1: BASELINE evaluates exactly the minimal evaluation set
// Q_min determined by the upper bounds and exact scores.
TEST(StrategyAgreementTest, BaselineEvaluatesMinimalSet) {
  SearchOptions options;
  options.k = 3;
  ExampleSpreadsheet sheet = Fig2aSheet(TpchIndex());
  PreparedSearch prep(TpchIndex(), TpchGraph(), sheet, options);
  SearchResult naive = RunNaive(prep, options);
  SearchResult baseline = RunBaseline(prep, options);

  // Recompute i*: candidates are sorted by ub desc; find the minimal i
  // with top_k{score(Q_1..Q_i)} >= ub(Q_{i+1}).
  std::unordered_map<std::string, double> exact;
  for (const EvaluatedRecord& rec : naive.evaluated) {
    double total = 0.0;
    for (double v : rec.row_scores) total += v;
    (void)total;
  }
  std::vector<double> scores;
  // Use the scored info by re-running scoring through naive's topk is
  // insufficient (only k kept); recompute exact scores per candidate.
  scores.reserve(prep.candidates.size());
  {
    std::unordered_map<std::string, double> by_sig;
    SearchOptions all;
    all.k = static_cast<int32_t>(prep.candidates.size());
    PreparedSearch prep2(TpchIndex(), TpchGraph(), sheet, all);
    SearchResult everything = RunNaive(prep2, all);
    for (const ScoredQuery& sq : everything.topk) {
      by_sig[sq.query.signature()] = sq.score;
    }
    for (const CandidateQuery& c : prep.candidates) {
      scores.push_back(by_sig.at(c.query.signature()));
    }
  }
  size_t istar = prep.candidates.size();
  std::multiset<double, std::greater<>> seen;
  for (size_t i = 0; i < prep.candidates.size(); ++i) {
    seen.insert(scores[i]);
    if (i + 1 == prep.candidates.size()) {
      istar = i + 1;
      break;
    }
    if (seen.size() >= static_cast<size_t>(options.k)) {
      auto it = seen.begin();
      std::advance(it, options.k - 1);
      if (*it >= prep.candidates[i + 1].upper_bound) {
        istar = i + 1;
        break;
      }
    }
  }
  EXPECT_EQ(baseline.stats.queries_evaluated,
            static_cast<int64_t>(istar));
}

struct SweepParam {
  int32_t k;
  double alpha;
  double epsilon;
  size_t cache_mb;
};

class StrategySweepTest : public ::testing::TestWithParam<SweepParam> {};

TEST_P(StrategySweepTest, AllStrategiesAgreeOnCsupp) {
  const SweepParam& p = GetParam();
  const CsuppWorld& world = SmallCsupp();

  datagen::EsGenerator gen(*world.index, *world.graph, /*seed=*/99);
  ASSERT_TRUE(gen.Init(/*min_text_columns=*/6, /*max_tree_size=*/4).ok());
  auto es = gen.Generate();
  ASSERT_TRUE(es.ok()) << es.status();

  SearchOptions options;
  options.k = p.k;
  options.score.alpha = p.alpha;
  options.epsilon = p.epsilon;
  options.cache_budget_bytes = p.cache_mb << 20;
  options.enumeration.max_tree_size = 4;

  PreparedSearch prep(*world.index, *world.graph, es->sheet, options);
  SearchResult naive = RunNaive(prep, options);
  SearchResult baseline = RunBaseline(prep, options);
  SearchResult fast = RunFastTopK(prep, options);

  ExpectSameTopK(naive, baseline, "naive-vs-baseline");
  ExpectSameTopK(naive, fast, "naive-vs-fast");
  EXPECT_LE(baseline.stats.queries_evaluated, naive.stats.queries_evaluated);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, StrategySweepTest,
    ::testing::Values(SweepParam{1, 0.8, 0.6, 64}, SweepParam{5, 0.8, 0.6, 64},
                      SweepParam{10, 0.5, 0.6, 64},
                      SweepParam{10, 1.0, 0.6, 64},
                      SweepParam{10, 0.8, 0.2, 64},
                      SweepParam{10, 0.8, 2.0, 64},
                      SweepParam{20, 0.8, 0.6, 1},
                      SweepParam{5, 0.6, 1.0, 2}),
    [](const ::testing::TestParamInfo<SweepParam>& info) {
      return "k" + std::to_string(info.param.k) + "_a" +
             std::to_string(static_cast<int>(info.param.alpha * 10)) + "_e" +
             std::to_string(static_cast<int>(info.param.epsilon * 10)) +
             "_c" + std::to_string(info.param.cache_mb);
    });

TEST(FastTopKTest, UsesCacheAndBatches) {
  const CsuppWorld& world = SmallCsupp();
  datagen::EsGenerator gen(*world.index, *world.graph, /*seed=*/123);
  ASSERT_TRUE(gen.Init(6, 4).ok());
  auto es = gen.Generate();
  ASSERT_TRUE(es.ok());

  SearchOptions options;
  options.k = 10;
  SearchResult fast =
      SearchFastTopK(*world.index, *world.graph, es->sheet, options);
  EXPECT_GE(fast.stats.batches, 1);
  // On a schema with shared sub-expressions, FASTTOPK should find
  // critical sub-PJs and get cache hits.
  EXPECT_GT(fast.stats.critical_subs_cached, 0);
  EXPECT_GT(fast.stats.cache.hits, 0);
}

TEST(FastTopKTest, ModelCostNotWorseThanBaseline) {
  const CsuppWorld& world = SmallCsupp();
  datagen::EsGenerator gen(*world.index, *world.graph, /*seed=*/321);
  ASSERT_TRUE(gen.Init(6, 4).ok());
  auto es = gen.Generate();
  ASSERT_TRUE(es.ok());

  SearchOptions options;
  options.k = 10;
  SearchResult baseline =
      SearchBaseline(*world.index, *world.graph, es->sheet, options);
  SearchResult fast =
      SearchFastTopK(*world.index, *world.graph, es->sheet, options);
  // FASTTOPK may evaluate more queries (up to (1+eps) * |Q_min|) but its
  // hash-operation count should benefit from sharing: allow slack but
  // catch pathological regressions.
  EXPECT_LT(static_cast<double>(fast.stats.counters.hash_lookups +
                                fast.stats.counters.hash_inserts),
            2.0 * static_cast<double>(baseline.stats.counters.hash_lookups +
                                      baseline.stats.counters.hash_inserts));
}

TEST(StrategyTest, KLargerThanCandidates) {
  SearchOptions options;
  options.k = 10000;
  ExampleSpreadsheet sheet = Fig2aSheet(TpchIndex());
  SearchResult fast =
      SearchFastTopK(TpchIndex(), TpchGraph(), sheet, options);
  SearchResult naive = SearchNaive(TpchIndex(), TpchGraph(), sheet, options);
  EXPECT_EQ(fast.topk.size(), naive.topk.size());
  EXPECT_EQ(fast.stats.queries_evaluated, fast.stats.queries_enumerated);
}

TEST(StrategyTest, NoMatchesGivesEmptyTopK) {
  auto sheet = ExampleSpreadsheet::FromCells(
      {{"zzzzzz", "qqqqqq"}}, TpchIndex().tokenizer());
  ASSERT_TRUE(sheet.ok());
  SearchOptions options;
  SearchResult r = SearchFastTopK(TpchIndex(), TpchGraph(), *sheet, options);
  EXPECT_TRUE(r.topk.empty());
  EXPECT_EQ(r.stats.queries_enumerated, 0);
}

TEST(StrategyTest, StatsTimingSplitPopulated) {
  ExampleSpreadsheet sheet = Fig2aSheet(TpchIndex());
  SearchOptions options;
  SearchResult r = SearchFastTopK(TpchIndex(), TpchGraph(), sheet, options);
  EXPECT_GT(r.stats.enum_seconds, 0.0);
  EXPECT_GT(r.stats.eval_seconds, 0.0);
  EXPECT_GT(r.stats.model_cost, 0);
  EXPECT_EQ(r.stats.query_row_evals, r.stats.queries_evaluated * 3);
}

}  // namespace
}  // namespace s4
