// Candidate enumeration (Sec 4.1.1): candidate columns, minimality
// pruning, deduplication, caps, and OR-semantics column subsets.
#include <gtest/gtest.h>

#include "enumerate/enumerator.h"
#include "tests/test_util.h"

namespace s4 {
namespace {

using testing::Fig2aSheet;
using testing::TpchDb;
using testing::TpchGraph;
using testing::TpchIndex;

class EnumeratorTest : public ::testing::Test {
 protected:
  EnumeratorTest()
      : sheet_(Fig2aSheet(TpchIndex())),
        ctx_(TpchIndex(), sheet_, ScoreParams{}) {}

  ExampleSpreadsheet sheet_;
  ScoreContext ctx_;
};

TEST_F(EnumeratorTest, EmitsExpectedCandidates) {
  EnumerationResult r = EnumerateCandidates(TpchGraph(), ctx_);
  // The Fig 2(a) spreadsheet admits exactly the A-mapping choices
  // {CustName, Clerk, SuppName} joined to Nation and Part; with the
  // default size cap 5 this gives a small set that includes the paper's
  // queries (i), (ii), (iii).
  EXPECT_GT(r.candidates.size(), 2u);
  bool found_i = false, found_ii = false, found_iii = false;
  for (const CandidateQuery& c : r.candidates) {
    std::string s = c.query.ToString(TpchDb());
    if (s.find("A->Customer.CustName") != std::string::npos &&
        s.find("LineItem") != std::string::npos) {
      found_i = true;
    }
    if (s.find("A->Supplier.SuppName") != std::string::npos) found_ii = true;
    if (s.find("A->Orders.Clerk") != std::string::npos) found_iii = true;
  }
  EXPECT_TRUE(found_i);
  EXPECT_TRUE(found_ii);
  EXPECT_TRUE(found_iii);
}

TEST_F(EnumeratorTest, AllCandidatesAreMinimalAndDistinct) {
  EnumerationResult r = EnumerateCandidates(TpchGraph(), ctx_);
  std::set<std::string> sigs;
  for (const CandidateQuery& c : r.candidates) {
    EXPECT_TRUE(c.query.IsMinimalShape()) << c.query.ToString(TpchDb());
    EXPECT_TRUE(sigs.insert(c.query.signature()).second)
        << "duplicate " << c.query.ToString(TpchDb());
    EXPECT_GT(c.upper_bound, 0.0);
    // Every ES column is mapped under AND semantics.
    std::set<int32_t> mapped;
    for (const ProjectionBinding& b : c.query.bindings()) {
      mapped.insert(b.es_column);
    }
    EXPECT_EQ(mapped.size(), 3u);
  }
}

TEST_F(EnumeratorTest, TreeSizeCapRespected) {
  EnumerationOptions opts;
  opts.max_tree_size = 4;
  EnumerationResult r = EnumerateCandidates(TpchGraph(), ctx_, opts);
  for (const CandidateQuery& c : r.candidates) {
    EXPECT_LE(c.query.tree().size(), 4);
  }
  // Size 4 excludes the 5-relation queries (i)/(iii) but keeps (ii).
  bool found_ii = false;
  for (const CandidateQuery& c : r.candidates) {
    if (c.query.ToString(TpchDb()).find("A->Supplier.SuppName") !=
        std::string::npos) {
      found_ii = true;
    }
  }
  EXPECT_TRUE(found_ii);
}

TEST_F(EnumeratorTest, MaxQueriesTruncates) {
  EnumerationOptions opts;
  opts.max_queries = 2;
  EnumerationResult r = EnumerateCandidates(TpchGraph(), ctx_, opts);
  EXPECT_LE(static_cast<int64_t>(r.candidates.size()), 2);
  EXPECT_TRUE(r.stats.truncated);
}

TEST_F(EnumeratorTest, ActiveColumnSubset) {
  EnumerationOptions opts;
  opts.active_columns = {0, 2};  // skip the country column
  EnumerationResult r = EnumerateCandidates(TpchGraph(), ctx_, opts);
  EXPECT_GT(r.candidates.size(), 0u);
  for (const CandidateQuery& c : r.candidates) {
    for (const ProjectionBinding& b : c.query.bindings()) {
      EXPECT_NE(b.es_column, 1);
    }
    // Nation may still appear as an internal connector (e.g. Customer -
    // Nation - Supplier) but never as a leaf: leaves must carry mapped
    // columns (Def 3 i) and column B is inactive.
    for (TreeNodeId leaf : c.query.tree().Leaves()) {
      EXPECT_NE(c.query.tree().node(leaf).table,
                TpchDb().FindTable("Nation")->id())
          << c.query.ToString(TpchDb());
    }
  }
}

TEST_F(EnumeratorTest, UpperBoundsMatchColumnScores) {
  EnumerationResult r = EnumerateCandidates(TpchGraph(), ctx_);
  for (const CandidateQuery& c : r.candidates) {
    EXPECT_NEAR(c.upper_bound,
                UpperBoundFromColumnScore(c.column_score,
                                          c.query.tree().size()),
                1e-12);
  }
}

TEST(EnumeratorEdgeTest, NoCandidatesForUnknownTerms) {
  auto sheet = ExampleSpreadsheet::FromCells({{"xyzzy"}},
                                             TpchIndex().tokenizer());
  ASSERT_TRUE(sheet.ok());
  ScoreContext ctx(TpchIndex(), *sheet, ScoreParams{});
  EnumerationResult r = EnumerateCandidates(TpchGraph(), ctx);
  EXPECT_TRUE(r.candidates.empty());
}

TEST(EnumeratorEdgeTest, SingleColumnSingleTable) {
  auto sheet = ExampleSpreadsheet::FromCells({{"Xbox"}, {"Samsung"}},
                                             TpchIndex().tokenizer());
  ASSERT_TRUE(sheet.ok());
  ScoreContext ctx(TpchIndex(), *sheet, ScoreParams{});
  EnumerationResult r = EnumerateCandidates(TpchGraph(), ctx);
  // Minimal candidates should include the single-relation Part query.
  bool found_single = false;
  for (const CandidateQuery& c : r.candidates) {
    if (c.query.tree().size() == 1) {
      EXPECT_EQ(TpchDb().table(c.query.tree().node(0).table).name(), "Part");
      found_single = true;
    }
  }
  EXPECT_TRUE(found_single);
}

// Two ES columns with vocabulary from the same database column: both map
// into (possibly distinct instances of) that column.
TEST(EnumeratorEdgeTest, TwoColumnsSameDomain) {
  auto sheet = ExampleSpreadsheet::FromCells({{"Xbox", "Samsung"}},
                                             TpchIndex().tokenizer());
  ASSERT_TRUE(sheet.ok());
  ScoreContext ctx(TpchIndex(), *sheet, ScoreParams{});
  EnumerationResult r = EnumerateCandidates(TpchGraph(), ctx);
  bool single_table = false;
  for (const CandidateQuery& c : r.candidates) {
    if (c.query.tree().size() == 1 && c.query.bindings().size() == 2) {
      single_table = true;
    }
  }
  EXPECT_TRUE(single_table);
}

}  // namespace
}  // namespace s4
