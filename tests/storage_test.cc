// Storage engine tests: Value, Table, Database, referential checks.
#include <gtest/gtest.h>

#include "storage/csv.h"
#include "storage/database.h"

namespace s4 {
namespace {

TEST(ValueTest, Variants) {
  EXPECT_TRUE(Value::Null().is_null());
  EXPECT_TRUE(Value::Int(7).is_int());
  EXPECT_EQ(Value::Int(7).AsInt(), 7);
  EXPECT_TRUE(Value::Text("hi").is_text());
  EXPECT_EQ(Value::Text("hi").AsText(), "hi");
  EXPECT_EQ(Value::Null().ToString(), "NULL");
  EXPECT_EQ(Value::Int(-3).ToString(), "-3");
  EXPECT_EQ(Value::Text("a b").ToString(), "'a b'");
  EXPECT_EQ(Value::Int(1), Value::Int(1));
  EXPECT_FALSE(Value::Int(1) == Value::Text("1"));
}

TEST(TableTest, ColumnsAndRows) {
  Table t(0, "T");
  ASSERT_TRUE(t.AddColumn("Id", ColumnType::kInt64).ok());
  ASSERT_TRUE(t.AddColumn("Name", ColumnType::kText).ok());
  EXPECT_FALSE(t.AddColumn("Name", ColumnType::kText).ok());  // duplicate
  ASSERT_TRUE(t.SetPrimaryKey(0).ok());
  EXPECT_FALSE(t.SetPrimaryKey(1).ok());  // text PK rejected
  ASSERT_TRUE(t.SetPrimaryKey(0).ok());

  EXPECT_TRUE(t.AppendRow({Value::Int(1), Value::Text("alpha")}).ok());
  EXPECT_TRUE(t.AppendRow({Value::Int(2), Value::Null()}).ok());
  EXPECT_FALSE(t.AppendRow({Value::Int(3)}).ok());            // arity
  EXPECT_FALSE(t.AppendRow({Value::Text("x"), Value::Null()}).ok());
  EXPECT_FALSE(t.AppendRow({Value::Null(), Value::Null()}).ok());  // null PK

  EXPECT_EQ(t.NumRows(), 2);
  EXPECT_EQ(t.GetInt(0, 0), 1);
  EXPECT_EQ(t.GetText(0, 1), "alpha");
  EXPECT_TRUE(t.IsNull(1, 1));
  EXPECT_EQ(t.ColumnIndex("Name"), 1);
  EXPECT_EQ(t.ColumnIndex("Nope"), -1);
  EXPECT_EQ(t.TextColumnIndexes(), std::vector<int32_t>{1});
  EXPECT_GT(t.ByteSize(), 0u);
}

TEST(TableTest, PkIndex) {
  Table t(0, "T");
  ASSERT_TRUE(t.AddColumn("Id", ColumnType::kInt64).ok());
  ASSERT_TRUE(t.SetPrimaryKey(0).ok());
  ASSERT_TRUE(t.AppendRow({Value::Int(10)}).ok());
  ASSERT_TRUE(t.AppendRow({Value::Int(20)}).ok());
  ASSERT_TRUE(t.BuildPkIndex().ok());
  EXPECT_EQ(t.FindByPk(10), 0);
  EXPECT_EQ(t.FindByPk(20), 1);
  EXPECT_EQ(t.FindByPk(30), -1);

  // With the index built, appends maintain it incrementally: duplicates
  // are rejected up front, new keys resolve without a rebuild.
  EXPECT_FALSE(t.AppendRow({Value::Int(10)}).ok());  // duplicate PK
  EXPECT_EQ(t.NumRows(), 2);
  ASSERT_TRUE(t.AppendRow({Value::Int(30)}).ok());
  EXPECT_EQ(t.FindByPk(30), 2);

  // Bulk loads (index not yet built) still defer duplicate detection to
  // BuildPkIndex.
  Table u(1, "U");
  ASSERT_TRUE(u.AddColumn("Id", ColumnType::kInt64).ok());
  ASSERT_TRUE(u.SetPrimaryKey(0).ok());
  ASSERT_TRUE(u.AppendRow({Value::Int(1)}).ok());
  ASSERT_TRUE(u.AppendRow({Value::Int(1)}).ok());
  EXPECT_FALSE(u.BuildPkIndex().ok());
}

TEST(TableTest, SetCellAndSwapDelete) {
  Table t(0, "T");
  ASSERT_TRUE(t.AddColumn("Id", ColumnType::kInt64).ok());
  ASSERT_TRUE(t.AddColumn("Name", ColumnType::kText).ok());
  ASSERT_TRUE(t.SetPrimaryKey(0).ok());
  ASSERT_TRUE(t.AppendRow({Value::Int(1), Value::Text("a")}).ok());
  ASSERT_TRUE(t.AppendRow({Value::Int(2), Value::Text("b")}).ok());
  ASSERT_TRUE(t.AppendRow({Value::Int(3), Value::Null()}).ok());
  ASSERT_TRUE(t.BuildPkIndex().ok());

  ASSERT_TRUE(t.SetCell(0, 1, Value::Text("alpha")).ok());
  EXPECT_EQ(t.GetText(0, 1), "alpha");
  ASSERT_TRUE(t.SetCell(2, 1, Value::Text("c")).ok());
  EXPECT_FALSE(t.IsNull(2, 1));
  ASSERT_TRUE(t.SetCell(1, 1, Value::Null()).ok());
  EXPECT_TRUE(t.IsNull(1, 1));
  EXPECT_FALSE(t.SetCell(0, 0, Value::Int(9)).ok());   // pk immutable
  EXPECT_FALSE(t.SetCell(0, 1, Value::Int(9)).ok());   // type mismatch
  EXPECT_FALSE(t.SetCell(9, 1, Value::Null()).ok());   // out of range

  // Swap-delete the middle row: the last row moves into its slot and
  // the pk index follows.
  ASSERT_TRUE(t.RemoveRowSwapLast(1).ok());
  EXPECT_EQ(t.NumRows(), 2);
  EXPECT_EQ(t.GetInt(1, 0), 3);
  EXPECT_EQ(t.FindByPk(3), 1);
  EXPECT_EQ(t.FindByPk(2), -1);
  // Deleting the last row needs no swap.
  ASSERT_TRUE(t.RemoveRowSwapLast(1).ok());
  EXPECT_EQ(t.NumRows(), 1);
  EXPECT_EQ(t.FindByPk(1), 0);
  EXPECT_FALSE(t.RemoveRowSwapLast(5).ok());
}

TEST(TableTest, Clone) {
  Table t(0, "T");
  ASSERT_TRUE(t.AddColumn("Id", ColumnType::kInt64).ok());
  ASSERT_TRUE(t.AddColumn("Name", ColumnType::kText).ok());
  ASSERT_TRUE(t.SetPrimaryKey(0).ok());
  ASSERT_TRUE(t.AppendRow({Value::Int(1), Value::Text("a")}).ok());
  ASSERT_TRUE(t.BuildPkIndex().ok());
  Table copy = t.Clone();
  ASSERT_TRUE(copy.SetCell(0, 1, Value::Text("changed")).ok());
  EXPECT_EQ(t.GetText(0, 1), "a");
  EXPECT_EQ(copy.GetText(0, 1), "changed");
  EXPECT_EQ(copy.FindByPk(1), 0);
}

TEST(TableTest, NoColumnsAfterRows) {
  Table t(0, "T");
  ASSERT_TRUE(t.AddColumn("Id", ColumnType::kInt64).ok());
  ASSERT_TRUE(t.SetPrimaryKey(0).ok());
  ASSERT_TRUE(t.AppendRow({Value::Int(1)}).ok());
  EXPECT_FALSE(t.AddColumn("Late", ColumnType::kText).ok());
}

TEST(DatabaseTest, TablesAndForeignKeys) {
  Database db;
  auto a = db.AddTable("A");
  ASSERT_TRUE(a.ok());
  EXPECT_FALSE(db.AddTable("A").ok());
  ASSERT_TRUE((*a)->AddColumn("AId", ColumnType::kInt64).ok());
  ASSERT_TRUE((*a)->AddColumn("BId", ColumnType::kInt64).ok());
  ASSERT_TRUE((*a)->SetPrimaryKey(0).ok());

  auto b = db.AddTable("B");
  ASSERT_TRUE(b.ok());
  ASSERT_TRUE((*b)->AddColumn("BId", ColumnType::kInt64).ok());
  ASSERT_TRUE((*b)->AddColumn("Name", ColumnType::kText).ok());
  ASSERT_TRUE((*b)->SetPrimaryKey(0).ok());

  EXPECT_FALSE(db.AddForeignKey("A", "Nope", "B").ok());
  EXPECT_FALSE(db.AddForeignKey("Nope", "BId", "B").ok());
  EXPECT_FALSE(db.AddForeignKey("A", "BId", "Nope").ok());
  ASSERT_TRUE(db.AddForeignKey("A", "BId", "B").ok());
  EXPECT_FALSE(db.AddForeignKey("A", "BId", "B").ok());  // duplicate

  ASSERT_TRUE((*b)->AppendRow({Value::Int(1), Value::Text("x")}).ok());
  ASSERT_TRUE((*a)->AppendRow({Value::Int(1), Value::Int(1)}).ok());
  EXPECT_TRUE(db.Finalize().ok());
  EXPECT_TRUE(db.finalized());

  // Dangling FK detected.
  ASSERT_TRUE((*a)->AppendRow({Value::Int(2), Value::Int(99)}).ok());
  EXPECT_FALSE(db.Finalize().ok());
  EXPECT_TRUE(db.Finalize(/*check_integrity=*/false).ok());

  EXPECT_EQ(db.ColumnName(ColumnRef{(*b)->id(), 1}), "B.Name");
  EXPECT_EQ(db.NumTextColumns(), 1);
  EXPECT_GT(db.ByteSize(), 0u);
}

TEST(DatabaseTest, FinalizeRequiresPrimaryKeys) {
  Database db;
  auto a = db.AddTable("A");
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE((*a)->AddColumn("X", ColumnType::kInt64).ok());
  EXPECT_FALSE(db.Finalize().ok());
}

TEST(CsvTest, ParseQuotedFields) {
  auto rows = ParseCsv("a,b,c\n1,\"x,y\",\"he said \"\"hi\"\"\"\n");
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows->size(), 2u);
  EXPECT_EQ((*rows)[1][1], "x,y");
  EXPECT_EQ((*rows)[1][2], "he said \"hi\"");
}

TEST(CsvTest, ParseErrors) {
  EXPECT_FALSE(ParseCsv("a,\"unterminated\n").ok());
}

TEST(CsvTest, RoundTrip) {
  std::vector<std::vector<std::string>> rows{{"a", "b"},
                                             {"1,2", "line\nbreak"}};
  auto parsed = ParseCsv(ToCsv(rows));
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(*parsed, rows);
}

TEST(CsvTest, LoadIntoTable) {
  Table t(0, "T");
  ASSERT_TRUE(t.AddColumn("Id", ColumnType::kInt64).ok());
  ASSERT_TRUE(t.AddColumn("Name", ColumnType::kText).ok());
  ASSERT_TRUE(t.SetPrimaryKey(0).ok());
  ASSERT_TRUE(LoadCsvInto("Id,Name\n1,alpha\n2,\n", &t).ok());
  EXPECT_EQ(t.NumRows(), 2);
  EXPECT_TRUE(t.IsNull(1, 1));

  EXPECT_FALSE(LoadCsvInto("Wrong,Header\n", &t).ok());
  EXPECT_FALSE(LoadCsvInto("Id,Name\nnotanint,x\n", &t).ok());
}

}  // namespace
}  // namespace s4
