// Robustness: corrupted snapshots and CSV never crash the loaders, and
// concurrent searches on one S4System are safe (the online path is
// read-only after index build).
#include <cstdio>
#include <thread>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "storage/csv.h"
#include "storage/serialize.h"
#include "strategy/strategy.h"
#include "tests/test_util.h"

namespace s4 {
namespace {

std::string TempPath(const char* name) {
  const char* dir = std::getenv("TMPDIR");
  return std::string(dir != nullptr ? dir : "/tmp") + "/" + name;
}

std::string ReadAll(const std::string& path) {
  auto content = ReadFile(path);
  EXPECT_TRUE(content.ok());
  return content.ok() ? *content : std::string();
}

void WriteAll(const std::string& path, const std::string& bytes) {
  FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  std::fwrite(bytes.data(), 1, bytes.size(), f);
  std::fclose(f);
}

// Truncations of a valid snapshot must fail cleanly (or, for whole-file
// prefixes that happen to be self-consistent, load something valid).
TEST(RobustnessTest, TruncatedSnapshots) {
  const std::string path = TempPath("s4_trunc.s4db");
  ASSERT_TRUE(SaveDatabase(testing::TpchDb(), path).ok());
  const std::string bytes = ReadAll(path);
  ASSERT_GT(bytes.size(), 64u);
  for (size_t cut : {size_t{0}, size_t{3}, size_t{7}, size_t{15},
                     bytes.size() / 4, bytes.size() / 2,
                     bytes.size() - 1}) {
    WriteAll(path, bytes.substr(0, cut));
    auto loaded = LoadDatabase(path);  // must not crash
    EXPECT_FALSE(loaded.ok()) << "cut at " << cut;
  }
  std::remove(path.c_str());
}

// Random single-byte corruptions must never crash; they may fail or may
// load (benign flips in text payloads are fine).
TEST(RobustnessTest, BitFlippedSnapshots) {
  const std::string path = TempPath("s4_flip.s4db");
  ASSERT_TRUE(SaveDatabase(testing::TpchDb(), path).ok());
  const std::string bytes = ReadAll(path);
  Rng rng(99);
  for (int trial = 0; trial < 200; ++trial) {
    std::string mutated = bytes;
    const size_t pos = rng.Uniform(mutated.size());
    mutated[pos] = static_cast<char>(mutated[pos] ^
                                     static_cast<char>(1 + rng.Uniform(255)));
    WriteAll(path, mutated);
    auto loaded = LoadDatabase(path);  // crash = test failure
    if (loaded.ok()) {
      // Whatever loaded must at least be structurally sound.
      EXPECT_TRUE(loaded->finalized());
    }
  }
  std::remove(path.c_str());
}

TEST(RobustnessTest, RandomCsvNeverCrashes) {
  Rng rng(7);
  const char alphabet[] = "ab,\"\n\r\\x1;";
  for (int trial = 0; trial < 300; ++trial) {
    std::string text;
    const size_t len = rng.Uniform(60);
    for (size_t i = 0; i < len; ++i) {
      text.push_back(alphabet[rng.Uniform(sizeof(alphabet) - 1)]);
    }
    auto parsed = ParseCsv(text);  // ok() either way; must not crash
    if (parsed.ok()) {
      for (const auto& row : *parsed) {
        EXPECT_GE(row.size(), 1u);
      }
    }
  }
}

// Concurrent read-only searches over a shared prepared system.
TEST(RobustnessTest, ConcurrentSearchesAgree) {
  const IndexSet& index = testing::TpchIndex();
  const SchemaGraph& graph = testing::TpchGraph();
  ExampleSpreadsheet sheet = testing::Fig2aSheet(index);
  SearchOptions options;
  options.k = 5;

  SearchResult expected = SearchFastTopK(index, graph, sheet, options);

  constexpr int kThreads = 4;
  std::vector<SearchResult> results(kThreads);
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int i = 0; i < kThreads; ++i) {
    threads.emplace_back([&, i] {
      results[i] = SearchFastTopK(index, graph, sheet, options);
    });
  }
  for (std::thread& t : threads) t.join();
  for (const SearchResult& r : results) {
    ASSERT_EQ(r.topk.size(), expected.topk.size());
    for (size_t i = 0; i < r.topk.size(); ++i) {
      EXPECT_NEAR(r.topk[i].score, expected.topk[i].score, 1e-12);
    }
  }
}

}  // namespace
}  // namespace s4
