// Incremental computation (Sec 5.4, Appendix A.1): correctness of the
// session-based strategies versus fresh searches, and the work savings.
#include <gtest/gtest.h>

#include "strategy/incremental.h"
#include "tests/test_util.h"

namespace s4 {
namespace {

using testing::Fig2aSheet;
using testing::TpchGraph;
using testing::TpchIndex;

std::vector<double> Scores(const SearchResult& r) {
  std::vector<double> out;
  for (const ScoredQuery& sq : r.topk) out.push_back(sq.score);
  return out;
}

void ExpectSameScores(const SearchResult& a, const SearchResult& b,
                      const std::string& label) {
  std::vector<double> sa = Scores(a), sb = Scores(b);
  ASSERT_EQ(sa.size(), sb.size()) << label;
  for (size_t i = 0; i < sa.size(); ++i) {
    EXPECT_NEAR(sa[i], sb[i], 1e-9) << label << " rank " << i;
  }
}

class IncrementalTest : public ::testing::TestWithParam<IncrementalMode> {};

// Typing the Fig 2(a) spreadsheet cell-by-cell must give, after every
// step, the same top-k scores as a fresh FASTTOPK search on the current
// sheet.
TEST_P(IncrementalTest, CellByCellMatchesFreshSearch) {
  const IncrementalMode mode = GetParam();
  SearchOptions options;
  options.k = 5;
  SearchSession session = [&] {
    return SearchSession(TpchIndex(), TpchGraph(), options);
  }();

  const std::vector<std::vector<std::string>> full{
      {"Rick", "USA", "Xbox"},
      {"Julie", "", "iPhone"},
      {"Kevin", "Canada", ""},
  };
  // Simulate row-wise, left-to-right typing: after the first full row,
  // add one cell at a time (paper's Fig 11 simulation).
  std::vector<std::vector<std::string>> cells{full[0]};
  for (size_t row = 1; row < full.size(); ++row) {
    cells.push_back({"", "", ""});
    for (size_t col = 0; col < full[row].size(); ++col) {
      cells[row][col] = full[row][col];
      auto sheet =
          ExampleSpreadsheet::FromCells(cells, TpchIndex().tokenizer());
      ASSERT_TRUE(sheet.ok());
      if (!sheet->Validate().ok()) continue;  // row still empty

      SearchResult inc = session.Search(*sheet, mode);
      SearchResult fresh =
          SearchFastTopK(TpchIndex(), TpchGraph(), *sheet, options);
      ExpectSameScores(inc, fresh,
                       "row " + std::to_string(row) + " col " +
                           std::to_string(col));
    }
  }
  EXPECT_GT(session.NumRememberedQueries(), 0);
}

INSTANTIATE_TEST_SUITE_P(
    Modes, IncrementalTest,
    ::testing::Values(IncrementalMode::kFastTopKInc,
                      IncrementalMode::kBaselineInc,
                      IncrementalMode::kFastTopKNInc),
    [](const ::testing::TestParamInfo<IncrementalMode>& info) {
      switch (info.param) {
        case IncrementalMode::kFastTopKInc:
          return "FastTopKInc";
        case IncrementalMode::kBaselineInc:
          return "BaselineInc";
        case IncrementalMode::kFastTopKNInc:
          return "FastTopKNInc";
      }
      return "Unknown";
    });

// The incremental strategy evaluates fewer query-rows than the
// non-incremental restart when only one cell changes.
TEST(IncrementalSavingsTest, FewerRowEvaluationsThanRestart) {
  SearchOptions options;
  options.k = 5;
  ExampleSpreadsheet sheet = Fig2aSheet(TpchIndex());

  SearchSession inc(TpchIndex(), TpchGraph(), options);
  inc.Search(sheet, IncrementalMode::kFastTopKInc);
  ExampleSpreadsheet edited =
      sheet.WithCell(2, 2, "Samsung", TpchIndex().tokenizer());
  SearchResult inc_result =
      inc.Search(edited, IncrementalMode::kFastTopKInc);

  SearchSession ninc(TpchIndex(), TpchGraph(), options);
  ninc.Search(sheet, IncrementalMode::kFastTopKNInc);
  SearchResult ninc_result =
      ninc.Search(edited, IncrementalMode::kFastTopKNInc);

  ExpectSameScores(inc_result, ninc_result, "inc-vs-ninc");
  EXPECT_LT(inc_result.stats.query_row_evals,
            ninc_result.stats.query_row_evals);
}

// Editing the same row twice in a row keeps results correct (stale-score
// invalidation path).
TEST(IncrementalSavingsTest, RepeatedEditsStayCorrect) {
  SearchOptions options;
  options.k = 5;
  SearchSession session(TpchIndex(), TpchGraph(), options);
  ExampleSpreadsheet sheet = Fig2aSheet(TpchIndex());
  session.Search(sheet);

  for (const char* value : {"Samsung", "Xbox", "iPhone"}) {
    sheet = sheet.WithCell(2, 2, value, TpchIndex().tokenizer());
    SearchResult inc = session.Search(sheet);
    SearchResult fresh =
        SearchFastTopK(TpchIndex(), TpchGraph(), sheet, options);
    ExpectSameScores(inc, fresh, std::string("edit ") + value);
  }
}

// Adding a column restarts cleanly.
TEST(IncrementalSavingsTest, ColumnChangeRestarts) {
  SearchOptions options;
  options.k = 5;
  SearchSession session(TpchIndex(), TpchGraph(), options);
  auto sheet2 = ExampleSpreadsheet::FromCells(
      {{"Rick", "USA"}, {"Kevin", "Canada"}}, TpchIndex().tokenizer());
  ASSERT_TRUE(sheet2.ok());
  session.Search(*sheet2);

  ExampleSpreadsheet sheet3 = Fig2aSheet(TpchIndex());
  SearchResult inc = session.Search(sheet3);
  SearchResult fresh =
      SearchFastTopK(TpchIndex(), TpchGraph(), sheet3, options);
  ExpectSameScores(inc, fresh, "column-added");
}

TEST(IncrementalSavingsTest, ResetForgetsHistory) {
  SearchOptions options;
  SearchSession session(TpchIndex(), TpchGraph(), options);
  session.Search(Fig2aSheet(TpchIndex()));
  EXPECT_GT(session.NumRememberedQueries(), 0);
  session.Reset();
  EXPECT_EQ(session.NumRememberedQueries(), 0);
}

}  // namespace
}  // namespace s4
