// Wire codec tests: randomized round-trip properties over requests and
// responses (scores must survive bit-exactly), rejection of truncated
// frames and garbage prefixes, and a deterministic fuzz corpus run
// against every decoder. The fuzz suites are part of the asan CI filter:
// a decoder fed hostile bytes must return a Status, never touch memory
// it does not own.
#include <algorithm>
#include <bit>
#include <cstring>
#include <limits>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "net/wire.h"

namespace s4::net {
namespace {

// A random byte string, including NUL and high bytes (cells are
// arbitrary user text as far as the wire is concerned).
std::string RandomBytes(Rng& rng, size_t max_len) {
  std::string s(rng.Uniform(max_len + 1), '\0');
  for (char& c : s) c = static_cast<char>(rng.Uniform(256));
  return s;
}

// Doubles whose bit patterns stress the codec: specials, denormals, and
// random bit patterns (which may be NaN — compared bitwise below).
double RandomDouble(Rng& rng) {
  switch (rng.Uniform(6)) {
    case 0:
      return 0.0;
    case 1:
      return -0.0;
    case 2:
      return std::numeric_limits<double>::infinity();
    case 3:
      return std::numeric_limits<double>::denorm_min();
    case 4:
      return rng.NextDouble();
    default:
      return std::bit_cast<double>(rng.Next());
  }
}

// Bitwise equality: the protocol promise is bit-identical doubles, which
// operator== cannot check (NaN != NaN, -0.0 == 0.0).
::testing::AssertionResult BitEqual(double a, double b) {
  if (std::bit_cast<uint64_t>(a) == std::bit_cast<uint64_t>(b)) {
    return ::testing::AssertionSuccess();
  }
  return ::testing::AssertionFailure()
         << a << " and " << b << " differ in bits";
}

NetSearchRequest RandomRequest(Rng& rng) {
  NetSearchRequest req;
  // Rectangular: the encoder normalizes every row to row 0's width, so
  // only rectangles round-trip verbatim (as the spreadsheet model
  // requires anyway).
  const size_t rows = rng.Uniform(5);
  const size_t cols = rows == 0 ? 0 : 1 + rng.Uniform(4);
  req.cells.assign(rows, std::vector<std::string>(cols));
  for (auto& row : req.cells) {
    for (auto& cell : row) cell = RandomBytes(rng, 24);
  }
  req.strategy = static_cast<uint8_t>(rng.Uniform(3));
  req.priority = static_cast<int32_t>(rng.Next());
  req.deadline_seconds = RandomDouble(rng);
  req.k = static_cast<int32_t>(rng.Next());
  req.alpha = RandomDouble(rng);
  req.epsilon = RandomDouble(rng);
  req.use_idf = rng.Bernoulli(0.5);
  req.exact_match_bonus = RandomDouble(rng);
  req.spelling_edits = static_cast<int32_t>(rng.Next());
  req.drop_zero_rows = rng.Bernoulli(0.5);
  req.num_threads = static_cast<int32_t>(rng.Next());
  req.max_tree_size = static_cast<int32_t>(rng.Next());
  req.cache_budget_bytes = rng.Next();
  // The approx knobs are decode-validated (unlike the legacy fields), so
  // the round-trip corpus draws them from their legal ranges; hostile
  // values get their own rejection test below.
  req.approx_epsilon = rng.NextDouble() * 4.0;
  req.approx_confidence = 0.001 + rng.NextDouble() * 0.999;
  req.sample_budget = 1 + static_cast<int64_t>(rng.Uniform(1u << 20));
  req.rng_seed = rng.Next();
  req.want_profile = rng.Bernoulli(0.5);
  return req;
}

obs::QueryProfile RandomProfile(Rng& rng) {
  obs::QueryProfile p;
  p.total_seconds = RandomDouble(rng);
  p.queue_seconds = RandomDouble(rng);
  p.enum_seconds = RandomDouble(rng);
  p.eval_seconds = RandomDouble(rng);
  p.candidates_enumerated = static_cast<int64_t>(rng.Next());
  p.candidates_evaluated = static_cast<int64_t>(rng.Next());
  p.query_row_evals = static_cast<int64_t>(rng.Next());
  p.skipped_by_condition = static_cast<int64_t>(rng.Next());
  p.batches = static_cast<int64_t>(rng.Next());
  p.bound_updates = static_cast<int64_t>(rng.Next());
  p.rows_scanned = static_cast<int64_t>(rng.Next());
  p.hash_lookups = static_cast<int64_t>(rng.Next());
  p.hash_inserts = static_cast<int64_t>(rng.Next());
  p.postings_scanned = static_cast<int64_t>(rng.Next());
  p.cache_hits = static_cast<int64_t>(rng.Next());
  p.cache_misses = static_cast<int64_t>(rng.Next());
  p.cache_insertions = static_cast<int64_t>(rng.Next());
  p.cache_evictions = static_cast<int64_t>(rng.Next());
  p.cache_peak_bytes = rng.Next();
  p.approx_sampled = static_cast<int64_t>(rng.Next());
  p.approx_skipped = static_cast<int64_t>(rng.Next());
  p.approx_escalated = static_cast<int64_t>(rng.Next());
  p.approx_samples = static_cast<int64_t>(rng.Next());
  p.approx_deadline_fallbacks = static_cast<int64_t>(rng.Next());
  const size_t n = rng.Uniform(4);
  for (size_t i = 0; i < n; ++i) {
    obs::ShardProfile s;
    s.shard_index = static_cast<int32_t>(rng.Next());
    s.wall_seconds = RandomDouble(rng);
    s.enumerated = static_cast<int64_t>(rng.Next());
    s.evaluated = static_cast<int64_t>(rng.Next());
    s.partials = static_cast<int64_t>(rng.Next());
    s.lost = rng.Bernoulli(0.5);
    s.approximate = rng.Bernoulli(0.5);
    p.shards.push_back(s);
  }
  return p;
}

obs::TraceSegment RandomSegment(Rng& rng) {
  obs::TraceSegment seg;
  seg.origin_unix_us = static_cast<int64_t>(rng.Next());
  seg.trace_id = rng.Next();
  const size_t n = rng.Uniform(5);
  for (size_t i = 0; i < n; ++i) {
    obs::TraceSegment::Event e;
    e.category = RandomBytes(rng, 12);
    e.name = RandomBytes(rng, 24);
    e.ts_us = static_cast<int64_t>(rng.Next());
    e.dur_us = static_cast<int64_t>(rng.Next());
    e.tid = static_cast<uint32_t>(rng.Next());
    e.span_id = rng.Next();
    e.parent_id = rng.Next();
    const size_t nargs = rng.Uniform(3);
    for (size_t a = 0; a < nargs; ++a) {
      e.args.push_back({RandomBytes(rng, 8), RandomBytes(rng, 16)});
    }
    seg.events.push_back(std::move(e));
  }
  return seg;
}

NetSearchResponse RandomResponse(Rng& rng) {
  NetSearchResponse resp;
  const size_t n = rng.Uniform(6);
  for (size_t i = 0; i < n; ++i) {
    NetTopkEntry e;
    e.signature = RandomBytes(rng, 40);
    e.sql = RandomBytes(rng, 120);
    e.score = RandomDouble(rng);
    e.upper_bound = RandomDouble(rng);
    e.row_score = RandomDouble(rng);
    e.column_score = RandomDouble(rng);
    e.approximate = rng.Bernoulli(0.5);
    e.interval_lo = RandomDouble(rng);
    e.interval_hi = RandomDouble(rng);
    e.interval_confidence = RandomDouble(rng);
    e.support = static_cast<int64_t>(rng.Next());
    e.sampled = static_cast<int64_t>(rng.Next());
    resp.topk.push_back(std::move(e));
  }
  resp.interrupted = rng.Bernoulli(0.5);
  resp.approximate = rng.Bernoulli(0.5);
  resp.queries_enumerated = static_cast<int64_t>(rng.Next());
  resp.queries_evaluated = static_cast<int64_t>(rng.Next());
  resp.query_row_evals = static_cast<int64_t>(rng.Next());
  resp.skipped_by_condition = static_cast<int64_t>(rng.Next());
  resp.model_cost = static_cast<int64_t>(rng.Next());
  resp.enum_seconds = RandomDouble(rng);
  resp.eval_seconds = RandomDouble(rng);
  resp.cache_hits = static_cast<int64_t>(rng.Next());
  resp.cache_misses = static_cast<int64_t>(rng.Next());
  resp.cache_evictions = static_cast<int64_t>(rng.Next());
  resp.cache_peak_bytes = rng.Next();
  resp.server_seconds = RandomDouble(rng);
  resp.has_profile = rng.Bernoulli(0.5);
  if (resp.has_profile) resp.profile = RandomProfile(rng);
  return resp;
}

NetShardSearchRequest RandomShardRequest(Rng& rng) {
  NetShardSearchRequest req;
  req.base = RandomRequest(rng);
  req.shard_count = 1 + static_cast<int32_t>(rng.Uniform(kMaxWireShards));
  req.shard_index =
      static_cast<int32_t>(rng.Uniform(static_cast<uint64_t>(req.shard_count)));
  req.partial_every = static_cast<uint32_t>(rng.Uniform(16));
  req.want_trace = rng.Bernoulli(0.5);
  req.trace_id = rng.Next();
  req.parent_span_id = rng.Next();
  req.origin_unix_us = static_cast<int64_t>(rng.Next());
  return req;
}

NetShardPartial RandomShardPartial(Rng& rng) {
  NetShardPartial p;
  const size_t n = rng.Uniform(6);
  for (size_t i = 0; i < n; ++i) {
    NetTopkEntry e;
    e.signature = RandomBytes(rng, 40);
    e.sql = RandomBytes(rng, 60);
    e.score = RandomDouble(rng);
    e.upper_bound = RandomDouble(rng);
    e.row_score = RandomDouble(rng);
    e.column_score = RandomDouble(rng);
    p.topk.push_back(std::move(e));
  }
  p.remaining_upper_bound = RandomDouble(rng);
  p.enumerated = static_cast<int64_t>(rng.Next());
  p.evaluated = static_cast<int64_t>(rng.Next());
  p.batches = static_cast<int64_t>(rng.Next());
  return p;
}

NetShardDone RandomShardDone(Rng& rng) {
  NetShardDone done;
  done.response = RandomResponse(rng);
  done.remaining_upper_bound = RandomDouble(rng);
  done.has_segment = rng.Bernoulli(0.5);
  if (done.has_segment) done.segment = RandomSegment(rng);
  return done;
}

Value RandomValue(Rng& rng) {
  switch (rng.Uniform(3)) {
    case 0:
      return Value::Null();
    case 1:
      return Value::Int(static_cast<int64_t>(rng.Next()));
    default:
      return Value::Text(RandomBytes(rng, 32));
  }
}

NetMutateRequest RandomMutateRequest(Rng& rng) {
  NetMutateRequest req;
  const size_t n = rng.Uniform(6);
  for (size_t i = 0; i < n; ++i) {
    switch (rng.Uniform(3)) {
      case 0: {
        std::vector<Value> values;
        const size_t nv = rng.Uniform(5);
        for (size_t j = 0; j < nv; ++j) values.push_back(RandomValue(rng));
        req.mutations.push_back(
            Mutation::Insert(RandomBytes(rng, 16), std::move(values)));
        break;
      }
      case 1:
        req.mutations.push_back(Mutation::Delete(
            RandomBytes(rng, 16), static_cast<int64_t>(rng.Next())));
        break;
      default:
        req.mutations.push_back(Mutation::Update(
            RandomBytes(rng, 16), static_cast<int64_t>(rng.Next()),
            RandomBytes(rng, 16), RandomValue(rng)));
        break;
    }
  }
  return req;
}

NetMutateResponse RandomMutateResponse(Rng& rng) {
  NetMutateResponse resp;
  resp.applied = static_cast<int64_t>(rng.Next());
  resp.epoch = rng.Next();
  resp.interrupted = rng.Bernoulli(0.5);
  resp.error = RandomBytes(rng, 48);
  const size_t n = rng.Uniform(5);
  for (size_t i = 0; i < n; ++i) {
    resp.touched.push_back(static_cast<int32_t>(rng.Next()));
  }
  resp.server_seconds = RandomDouble(rng);
  return resp;
}

TEST(WireCodecTest, HeaderRoundTrip) {
  Rng rng(11);
  for (int i = 0; i < 200; ++i) {
    FrameHeader h;
    h.type = static_cast<FrameType>(
        1 + rng.Uniform(static_cast<uint64_t>(FrameType::kSlowLogResponse)));
    h.request_id = rng.Next();
    h.payload_len = static_cast<uint32_t>(rng.Next());
    std::string buf;
    AppendFrameHeader(h, &buf);
    ASSERT_EQ(buf.size(), kHeaderBytes);
    FrameHeader got;
    ASSERT_TRUE(DecodeFrameHeader(buf, &got).ok());
    EXPECT_EQ(got.version, kProtocolVersion);
    EXPECT_EQ(got.type, h.type);
    EXPECT_EQ(got.request_id, h.request_id);
    EXPECT_EQ(got.payload_len, h.payload_len);
  }
}

TEST(WireCodecTest, RequestRoundTripProperty) {
  Rng rng(42);
  for (int i = 0; i < 300; ++i) {
    const NetSearchRequest req = RandomRequest(rng);
    const uint64_t id = rng.Next();
    const std::string frame = EncodeSearchRequestFrame(req, id);

    FrameHeader h;
    ASSERT_TRUE(DecodeFrameHeader(frame, &h).ok());
    EXPECT_EQ(h.type, FrameType::kSearchRequest);
    EXPECT_EQ(h.request_id, id);
    ASSERT_EQ(frame.size(), kHeaderBytes + h.payload_len);

    NetSearchRequest got;
    const Status st = DecodeSearchRequest(
        std::string_view(frame).substr(kHeaderBytes), &got);
    ASSERT_TRUE(st.ok()) << st;
    EXPECT_EQ(got.cells, req.cells);
    EXPECT_EQ(got.strategy, req.strategy);
    EXPECT_EQ(got.priority, req.priority);
    EXPECT_TRUE(BitEqual(got.deadline_seconds, req.deadline_seconds));
    EXPECT_EQ(got.k, req.k);
    EXPECT_TRUE(BitEqual(got.alpha, req.alpha));
    EXPECT_TRUE(BitEqual(got.epsilon, req.epsilon));
    EXPECT_EQ(got.use_idf, req.use_idf);
    EXPECT_TRUE(BitEqual(got.exact_match_bonus, req.exact_match_bonus));
    EXPECT_EQ(got.spelling_edits, req.spelling_edits);
    EXPECT_EQ(got.drop_zero_rows, req.drop_zero_rows);
    EXPECT_EQ(got.num_threads, req.num_threads);
    EXPECT_EQ(got.max_tree_size, req.max_tree_size);
    EXPECT_EQ(got.cache_budget_bytes, req.cache_budget_bytes);
    EXPECT_TRUE(BitEqual(got.approx_epsilon, req.approx_epsilon));
    EXPECT_TRUE(BitEqual(got.approx_confidence, req.approx_confidence));
    EXPECT_EQ(got.sample_budget, req.sample_budget);
    EXPECT_EQ(got.rng_seed, req.rng_seed);
    EXPECT_EQ(got.want_profile, req.want_profile);
  }
}

// Field-by-field profile comparison shared by the response and
// shard-done round-trip suites.
void ExpectProfileEq(const obs::QueryProfile& got,
                     const obs::QueryProfile& want) {
  EXPECT_TRUE(BitEqual(got.total_seconds, want.total_seconds));
  EXPECT_TRUE(BitEqual(got.queue_seconds, want.queue_seconds));
  EXPECT_TRUE(BitEqual(got.enum_seconds, want.enum_seconds));
  EXPECT_TRUE(BitEqual(got.eval_seconds, want.eval_seconds));
  EXPECT_EQ(got.candidates_enumerated, want.candidates_enumerated);
  EXPECT_EQ(got.candidates_evaluated, want.candidates_evaluated);
  EXPECT_EQ(got.query_row_evals, want.query_row_evals);
  EXPECT_EQ(got.skipped_by_condition, want.skipped_by_condition);
  EXPECT_EQ(got.batches, want.batches);
  EXPECT_EQ(got.bound_updates, want.bound_updates);
  EXPECT_EQ(got.rows_scanned, want.rows_scanned);
  EXPECT_EQ(got.hash_lookups, want.hash_lookups);
  EXPECT_EQ(got.hash_inserts, want.hash_inserts);
  EXPECT_EQ(got.postings_scanned, want.postings_scanned);
  EXPECT_EQ(got.cache_hits, want.cache_hits);
  EXPECT_EQ(got.cache_misses, want.cache_misses);
  EXPECT_EQ(got.cache_insertions, want.cache_insertions);
  EXPECT_EQ(got.cache_evictions, want.cache_evictions);
  EXPECT_EQ(got.cache_peak_bytes, want.cache_peak_bytes);
  EXPECT_EQ(got.approx_sampled, want.approx_sampled);
  EXPECT_EQ(got.approx_skipped, want.approx_skipped);
  EXPECT_EQ(got.approx_escalated, want.approx_escalated);
  EXPECT_EQ(got.approx_samples, want.approx_samples);
  EXPECT_EQ(got.approx_deadline_fallbacks, want.approx_deadline_fallbacks);
  ASSERT_EQ(got.shards.size(), want.shards.size());
  for (size_t i = 0; i < want.shards.size(); ++i) {
    EXPECT_EQ(got.shards[i].shard_index, want.shards[i].shard_index);
    EXPECT_TRUE(
        BitEqual(got.shards[i].wall_seconds, want.shards[i].wall_seconds));
    EXPECT_EQ(got.shards[i].enumerated, want.shards[i].enumerated);
    EXPECT_EQ(got.shards[i].evaluated, want.shards[i].evaluated);
    EXPECT_EQ(got.shards[i].partials, want.shards[i].partials);
    EXPECT_EQ(got.shards[i].lost, want.shards[i].lost);
    EXPECT_EQ(got.shards[i].approximate, want.shards[i].approximate);
  }
}

void ExpectSegmentEq(const obs::TraceSegment& got,
                     const obs::TraceSegment& want) {
  EXPECT_EQ(got.origin_unix_us, want.origin_unix_us);
  EXPECT_EQ(got.trace_id, want.trace_id);
  ASSERT_EQ(got.events.size(), want.events.size());
  for (size_t i = 0; i < want.events.size(); ++i) {
    EXPECT_EQ(got.events[i].category, want.events[i].category);
    EXPECT_EQ(got.events[i].name, want.events[i].name);
    EXPECT_EQ(got.events[i].ts_us, want.events[i].ts_us);
    EXPECT_EQ(got.events[i].dur_us, want.events[i].dur_us);
    EXPECT_EQ(got.events[i].tid, want.events[i].tid);
    EXPECT_EQ(got.events[i].span_id, want.events[i].span_id);
    EXPECT_EQ(got.events[i].parent_id, want.events[i].parent_id);
    ASSERT_EQ(got.events[i].args.size(), want.events[i].args.size());
    for (size_t a = 0; a < want.events[i].args.size(); ++a) {
      EXPECT_EQ(got.events[i].args[a].key, want.events[i].args[a].key);
      EXPECT_EQ(got.events[i].args[a].value, want.events[i].args[a].value);
    }
  }
}

TEST(WireCodecTest, ResponseRoundTripProperty) {
  Rng rng(43);
  for (int i = 0; i < 300; ++i) {
    const NetSearchResponse resp = RandomResponse(rng);
    const uint64_t id = rng.Next();
    const std::string frame = EncodeSearchResponseFrame(resp, id);

    FrameHeader h;
    ASSERT_TRUE(DecodeFrameHeader(frame, &h).ok());
    EXPECT_EQ(h.type, FrameType::kSearchResponse);
    EXPECT_EQ(h.request_id, id);

    NetSearchResponse got;
    const Status st = DecodeSearchResponse(
        std::string_view(frame).substr(kHeaderBytes), &got);
    ASSERT_TRUE(st.ok()) << st;
    ASSERT_EQ(got.topk.size(), resp.topk.size());
    for (size_t j = 0; j < resp.topk.size(); ++j) {
      EXPECT_EQ(got.topk[j].signature, resp.topk[j].signature);
      EXPECT_EQ(got.topk[j].sql, resp.topk[j].sql);
      EXPECT_TRUE(BitEqual(got.topk[j].score, resp.topk[j].score));
      EXPECT_TRUE(BitEqual(got.topk[j].upper_bound, resp.topk[j].upper_bound));
      EXPECT_TRUE(BitEqual(got.topk[j].row_score, resp.topk[j].row_score));
      EXPECT_TRUE(
          BitEqual(got.topk[j].column_score, resp.topk[j].column_score));
      EXPECT_EQ(got.topk[j].approximate, resp.topk[j].approximate);
      EXPECT_TRUE(BitEqual(got.topk[j].interval_lo, resp.topk[j].interval_lo));
      EXPECT_TRUE(BitEqual(got.topk[j].interval_hi, resp.topk[j].interval_hi));
      EXPECT_TRUE(BitEqual(got.topk[j].interval_confidence,
                           resp.topk[j].interval_confidence));
      EXPECT_EQ(got.topk[j].support, resp.topk[j].support);
      EXPECT_EQ(got.topk[j].sampled, resp.topk[j].sampled);
    }
    EXPECT_EQ(got.interrupted, resp.interrupted);
    EXPECT_EQ(got.approximate, resp.approximate);
    EXPECT_EQ(got.queries_enumerated, resp.queries_enumerated);
    EXPECT_EQ(got.queries_evaluated, resp.queries_evaluated);
    EXPECT_EQ(got.query_row_evals, resp.query_row_evals);
    EXPECT_EQ(got.skipped_by_condition, resp.skipped_by_condition);
    EXPECT_EQ(got.model_cost, resp.model_cost);
    EXPECT_TRUE(BitEqual(got.enum_seconds, resp.enum_seconds));
    EXPECT_TRUE(BitEqual(got.eval_seconds, resp.eval_seconds));
    EXPECT_EQ(got.cache_hits, resp.cache_hits);
    EXPECT_EQ(got.cache_misses, resp.cache_misses);
    EXPECT_EQ(got.cache_evictions, resp.cache_evictions);
    EXPECT_EQ(got.cache_peak_bytes, resp.cache_peak_bytes);
    EXPECT_TRUE(BitEqual(got.server_seconds, resp.server_seconds));
    ASSERT_EQ(got.has_profile, resp.has_profile);
    if (resp.has_profile) ExpectProfileEq(got.profile, resp.profile);
  }
}

TEST(WireCodecTest, ErrorRoundTripAllCodes) {
  const std::vector<Status> statuses = {
      Status::InvalidArgument("bad"),     Status::NotFound("gone"),
      Status::AlreadyExists("dup"),       Status::OutOfRange("far"),
      Status::FailedPrecondition("pre"),  Status::ResourceExhausted("full"),
      Status::Cancelled("stop"),          Status::DeadlineExceeded("late"),
      Status::Internal("boom"),
  };
  for (const Status& s : statuses) {
    const std::string frame = EncodeErrorFrame(s, 77);
    FrameHeader h;
    ASSERT_TRUE(DecodeFrameHeader(frame, &h).ok());
    EXPECT_EQ(h.type, FrameType::kError);
    NetError err;
    ASSERT_TRUE(
        DecodeError(std::string_view(frame).substr(kHeaderBytes), &err).ok());
    const Status back = err.ToStatus();
    EXPECT_EQ(back.code(), s.code());
    EXPECT_EQ(back.message(), s.message());
    // The retryable hint is the error-mapping table's one policy bit:
    // only backpressure is worth a verbatim retry.
    EXPECT_EQ(err.retryable, s.code() == StatusCode::kResourceExhausted);
  }
}

TEST(WireCodecTest, PingPongFrames) {
  for (uint64_t id : {uint64_t{0}, uint64_t{1}, ~uint64_t{0}}) {
    FrameHeader h;
    ASSERT_TRUE(DecodeFrameHeader(EncodePingFrame(id), &h).ok());
    EXPECT_EQ(h.type, FrameType::kPing);
    EXPECT_EQ(h.request_id, id);
    EXPECT_EQ(h.payload_len, 0u);
    ASSERT_TRUE(DecodeFrameHeader(EncodePongFrame(id), &h).ok());
    EXPECT_EQ(h.type, FrameType::kPong);
  }
}

TEST(WireCodecTest, StatsAndTraceFrames) {
  // kStatsRequest: empty payload, id echoed.
  FrameHeader h;
  ASSERT_TRUE(DecodeFrameHeader(EncodeStatsRequestFrame(11), &h).ok());
  EXPECT_EQ(h.type, FrameType::kStatsRequest);
  EXPECT_EQ(h.request_id, 11u);
  EXPECT_EQ(h.payload_len, 0u);

  // Responses carry raw text bytes verbatim (no re-encoding).
  const std::string text = "# TYPE s4_searches_total counter\n"
                           "s4_searches_total 3\n";
  const std::string stats_frame = EncodeStatsResponseFrame(text, 12);
  ASSERT_TRUE(DecodeFrameHeader(stats_frame, &h).ok());
  EXPECT_EQ(h.type, FrameType::kStatsResponse);
  EXPECT_EQ(h.payload_len, text.size());
  EXPECT_EQ(stats_frame.substr(kHeaderBytes), text);

  const std::string json = "{\"traceEvents\":[]}";
  const std::string trace_frame = EncodeTraceResponseFrame(json, 13);
  ASSERT_TRUE(DecodeFrameHeader(trace_frame, &h).ok());
  EXPECT_EQ(h.type, FrameType::kTraceResponse);
  EXPECT_EQ(trace_frame.substr(kHeaderBytes), json);

  // kTraceRequest: the *target* id travels in the payload; the header id
  // identifies this exchange (RoundTrip matches on the echo).
  for (uint64_t target : {uint64_t{0}, uint64_t{42}, ~uint64_t{0}}) {
    const std::string frame = EncodeTraceRequestFrame(target, 14);
    ASSERT_TRUE(DecodeFrameHeader(frame, &h).ok());
    EXPECT_EQ(h.type, FrameType::kTraceRequest);
    EXPECT_EQ(h.request_id, 14u);
    uint64_t got = 1;
    ASSERT_TRUE(DecodeTraceRequest(
                    std::string_view(frame).substr(kHeaderBytes), &got)
                    .ok());
    EXPECT_EQ(got, target);
  }

  // Truncated / padded trace-request payloads are rejected.
  const std::string frame = EncodeTraceRequestFrame(42, 15);
  const std::string_view payload =
      std::string_view(frame).substr(kHeaderBytes);
  for (size_t len = 0; len < payload.size(); ++len) {
    uint64_t got = 0;
    EXPECT_FALSE(DecodeTraceRequest(payload.substr(0, len), &got).ok());
  }
  std::string padded(payload);
  padded.push_back('\0');
  uint64_t got = 0;
  EXPECT_FALSE(DecodeTraceRequest(padded, &got).ok());
}

TEST(WireCodecTest, ApproxKnobsHostileValuesRejected) {
  // The four approx knobs are the 32 payload bytes just before the
  // trailing want_profile flag (f64 epsilon, f64 confidence, i64 budget,
  // u64 seed); patch them in place on an otherwise-valid frame. Doubles
  // travel as raw bits, so NaN and negative values encode fine and must
  // be caught by the decoder.
  auto reencode = [](double eps, double conf, int64_t budget) {
    NetSearchRequest req;
    req.cells = {{"The Matrix"}};
    std::string frame = EncodeSearchRequestFrame(req, 1);
    WireWriter w;
    w.PutDouble(eps);
    w.PutDouble(conf);
    w.PutI64(budget);
    w.PutU64(req.rng_seed);
    frame.replace(frame.size() - 33, 32, w.data());
    NetSearchRequest got;
    return DecodeSearchRequest(
        std::string_view(frame).substr(kHeaderBytes), &got);
  };
  const double nan = std::numeric_limits<double>::quiet_NaN();
  EXPECT_TRUE(reencode(0.0, 0.95, 4096).ok());
  EXPECT_TRUE(reencode(0.05, 1.0, 1).ok());
  EXPECT_FALSE(reencode(-0.1, 0.95, 4096).ok());  // negative epsilon
  EXPECT_FALSE(reencode(nan, 0.95, 4096).ok());   // NaN epsilon
  EXPECT_FALSE(reencode(kMaxWireApproxEpsilon * 2, 0.95, 4096).ok());
  EXPECT_FALSE(reencode(0.0, 0.0, 4096).ok());    // confidence = 0
  EXPECT_FALSE(reencode(0.0, -0.5, 4096).ok());   // negative confidence
  EXPECT_FALSE(reencode(0.0, 1.5, 4096).ok());    // confidence > 1
  EXPECT_FALSE(reencode(0.0, nan, 4096).ok());    // NaN confidence
  EXPECT_FALSE(reencode(0.0, 0.95, 0).ok());      // zero budget
  EXPECT_FALSE(reencode(0.0, 0.95, -7).ok());     // negative budget
  EXPECT_FALSE(reencode(0.0, 0.95, kMaxWireSampleBudget + 1).ok());
}

TEST(WireCodecTest, TruncatedRequestEveryPrefixRejected) {
  Rng rng(7);
  const NetSearchRequest req = RandomRequest(rng);
  const std::string frame = EncodeSearchRequestFrame(req, 5);
  const std::string_view payload = std::string_view(frame).substr(kHeaderBytes);
  // Every strict prefix of a valid payload must fail to decode: the
  // format has no optional tail, so truncation is always detectable.
  for (size_t len = 0; len < payload.size(); ++len) {
    NetSearchRequest got;
    EXPECT_FALSE(DecodeSearchRequest(payload.substr(0, len), &got).ok())
        << "prefix of " << len << " bytes decoded";
  }
  // And bytes beyond the payload are trailing garbage, also rejected.
  std::string padded(payload);
  padded.push_back('\0');
  NetSearchRequest got;
  EXPECT_FALSE(DecodeSearchRequest(padded, &got).ok());
}

TEST(WireCodecTest, TruncatedResponseEveryPrefixRejected) {
  Rng rng(9);
  NetSearchResponse resp = RandomResponse(rng);
  // Force the optional profile tail on so truncation mid-profile is
  // exercised too.
  resp.has_profile = true;
  resp.profile = RandomProfile(rng);
  const std::string frame = EncodeSearchResponseFrame(resp, 6);
  const std::string_view payload = std::string_view(frame).substr(kHeaderBytes);
  for (size_t len = 0; len < payload.size(); ++len) {
    NetSearchResponse got;
    EXPECT_FALSE(DecodeSearchResponse(payload.substr(0, len), &got).ok())
        << "prefix of " << len << " bytes decoded";
  }
}

// --- scatter-gather shard frames ---------------------------------------

TEST(WireCodecTest, ShardRequestRoundTripProperty) {
  Rng rng(51);
  for (int i = 0; i < 300; ++i) {
    const NetShardSearchRequest req = RandomShardRequest(rng);
    const uint64_t id = rng.Next();
    const std::string frame = EncodeShardSearchRequestFrame(req, id);
    FrameHeader h;
    ASSERT_TRUE(DecodeFrameHeader(frame, &h).ok());
    EXPECT_EQ(h.type, FrameType::kShardSearchRequest);
    EXPECT_EQ(h.request_id, id);
    NetShardSearchRequest got;
    const Status st = DecodeShardSearchRequest(
        std::string_view(frame).substr(kHeaderBytes), &got);
    ASSERT_TRUE(st.ok()) << st;
    EXPECT_EQ(got.shard_count, req.shard_count);
    EXPECT_EQ(got.shard_index, req.shard_index);
    EXPECT_EQ(got.partial_every, req.partial_every);
    EXPECT_EQ(got.want_trace, req.want_trace);
    EXPECT_EQ(got.trace_id, req.trace_id);
    EXPECT_EQ(got.parent_span_id, req.parent_span_id);
    EXPECT_EQ(got.origin_unix_us, req.origin_unix_us);
    EXPECT_EQ(got.base.want_profile, req.base.want_profile);
    EXPECT_EQ(got.base.cells, req.base.cells);
    EXPECT_EQ(got.base.strategy, req.base.strategy);
    EXPECT_EQ(got.base.k, req.base.k);
    EXPECT_TRUE(BitEqual(got.base.deadline_seconds,
                         req.base.deadline_seconds));
    EXPECT_TRUE(BitEqual(got.base.alpha, req.base.alpha));
    EXPECT_TRUE(BitEqual(got.base.epsilon, req.base.epsilon));
  }
}

TEST(WireCodecTest, ShardPartialRoundTripProperty) {
  Rng rng(52);
  for (int i = 0; i < 300; ++i) {
    const NetShardPartial p = RandomShardPartial(rng);
    const std::string frame = EncodeShardPartialFrame(p, 9);
    FrameHeader h;
    ASSERT_TRUE(DecodeFrameHeader(frame, &h).ok());
    EXPECT_EQ(h.type, FrameType::kShardPartial);
    NetShardPartial got;
    const Status st =
        DecodeShardPartial(std::string_view(frame).substr(kHeaderBytes), &got);
    ASSERT_TRUE(st.ok()) << st;
    ASSERT_EQ(got.topk.size(), p.topk.size());
    for (size_t j = 0; j < p.topk.size(); ++j) {
      EXPECT_EQ(got.topk[j].signature, p.topk[j].signature);
      EXPECT_TRUE(BitEqual(got.topk[j].score, p.topk[j].score));
      EXPECT_TRUE(BitEqual(got.topk[j].upper_bound, p.topk[j].upper_bound));
    }
    EXPECT_TRUE(
        BitEqual(got.remaining_upper_bound, p.remaining_upper_bound));
    EXPECT_EQ(got.enumerated, p.enumerated);
    EXPECT_EQ(got.evaluated, p.evaluated);
    EXPECT_EQ(got.batches, p.batches);
  }
}

TEST(WireCodecTest, ShardDoneRoundTripProperty) {
  Rng rng(53);
  for (int i = 0; i < 300; ++i) {
    const NetShardDone done = RandomShardDone(rng);
    const std::string frame = EncodeShardDoneFrame(done, 4);
    FrameHeader h;
    ASSERT_TRUE(DecodeFrameHeader(frame, &h).ok());
    EXPECT_EQ(h.type, FrameType::kShardDone);
    NetShardDone got;
    const Status st =
        DecodeShardDone(std::string_view(frame).substr(kHeaderBytes), &got);
    ASSERT_TRUE(st.ok()) << st;
    ASSERT_EQ(got.response.topk.size(), done.response.topk.size());
    for (size_t j = 0; j < done.response.topk.size(); ++j) {
      EXPECT_EQ(got.response.topk[j].signature,
                done.response.topk[j].signature);
      EXPECT_TRUE(
          BitEqual(got.response.topk[j].score, done.response.topk[j].score));
    }
    EXPECT_EQ(got.response.interrupted, done.response.interrupted);
    EXPECT_EQ(got.response.queries_enumerated,
              done.response.queries_enumerated);
    ASSERT_EQ(got.response.has_profile, done.response.has_profile);
    if (done.response.has_profile) {
      ExpectProfileEq(got.response.profile, done.response.profile);
    }
    EXPECT_TRUE(
        BitEqual(got.remaining_upper_bound, done.remaining_upper_bound));
    ASSERT_EQ(got.has_segment, done.has_segment);
    if (done.has_segment) ExpectSegmentEq(got.segment, done.segment);
  }
}

TEST(WireCodecTest, ShardStopRoundTrip) {
  for (uint64_t target : {uint64_t{0}, uint64_t{42}, ~uint64_t{0}}) {
    const std::string frame = EncodeShardStopFrame(target, 19);
    FrameHeader h;
    ASSERT_TRUE(DecodeFrameHeader(frame, &h).ok());
    EXPECT_EQ(h.type, FrameType::kShardStop);
    EXPECT_EQ(h.request_id, 19u);
    uint64_t got = 1;
    ASSERT_TRUE(
        DecodeShardStop(std::string_view(frame).substr(kHeaderBytes), &got)
            .ok());
    EXPECT_EQ(got, target);
  }
}

TEST(WireCodecTest, ShardRequestBadSliceRejected) {
  auto reencode = [](int32_t count, int32_t index) {
    NetShardSearchRequest req;
    req.shard_count = 1;  // encode with a valid slice, then patch bytes
    req.shard_index = 0;
    std::string frame = EncodeShardSearchRequestFrame(req, 1);
    // Payload layout: i32 shard_count, i32 shard_index, ...
    memcpy(frame.data() + kHeaderBytes, &count, sizeof(count));
    memcpy(frame.data() + kHeaderBytes + 4, &index, sizeof(index));
    NetShardSearchRequest got;
    return DecodeShardSearchRequest(
        std::string_view(frame).substr(kHeaderBytes), &got);
  };
  EXPECT_FALSE(reencode(0, 0).ok());                  // no shards
  EXPECT_FALSE(reencode(-4, 0).ok());                 // negative count
  EXPECT_FALSE(reencode(kMaxWireShards + 1, 0).ok()); // over the cap
  EXPECT_FALSE(reencode(4, 4).ok());                  // index out of range
  EXPECT_FALSE(reencode(4, -1).ok());                 // negative index
  EXPECT_TRUE(reencode(4, 3).ok());
}

TEST(WireCodecTest, TruncatedShardFramesEveryPrefixRejected) {
  Rng rng(57);
  // Force the optional trace segment on so truncation inside the stitch
  // payload is exercised regardless of what the seed draws.
  NetShardDone done = RandomShardDone(rng);
  done.has_segment = true;
  done.segment = RandomSegment(rng);
  const std::string frames[] = {
      EncodeShardSearchRequestFrame(RandomShardRequest(rng), 1),
      EncodeShardPartialFrame(RandomShardPartial(rng), 2),
      EncodeShardDoneFrame(done, 3),
      EncodeShardStopFrame(77, 4),
  };
  for (const std::string& frame : frames) {
    FrameHeader h;
    ASSERT_TRUE(DecodeFrameHeader(frame, &h).ok());
    const std::string_view payload =
        std::string_view(frame).substr(kHeaderBytes);
    for (size_t len = 0; len < payload.size(); ++len) {
      const std::string_view prefix = payload.substr(0, len);
      switch (h.type) {
        case FrameType::kShardSearchRequest: {
          NetShardSearchRequest got;
          EXPECT_FALSE(DecodeShardSearchRequest(prefix, &got).ok())
              << "prefix of " << len << " bytes decoded";
          break;
        }
        case FrameType::kShardPartial: {
          NetShardPartial got;
          EXPECT_FALSE(DecodeShardPartial(prefix, &got).ok())
              << "prefix of " << len << " bytes decoded";
          break;
        }
        case FrameType::kShardDone: {
          NetShardDone got;
          EXPECT_FALSE(DecodeShardDone(prefix, &got).ok())
              << "prefix of " << len << " bytes decoded";
          break;
        }
        default: {
          uint64_t got = 0;
          EXPECT_FALSE(DecodeShardStop(prefix, &got).ok())
              << "prefix of " << len << " bytes decoded";
          break;
        }
      }
    }
    // Trailing garbage is rejected too: no frame has an optional tail.
    std::string padded(payload);
    padded.push_back('\0');
    switch (h.type) {
      case FrameType::kShardSearchRequest: {
        NetShardSearchRequest got;
        EXPECT_FALSE(DecodeShardSearchRequest(padded, &got).ok());
        break;
      }
      case FrameType::kShardPartial: {
        NetShardPartial got;
        EXPECT_FALSE(DecodeShardPartial(padded, &got).ok());
        break;
      }
      case FrameType::kShardDone: {
        NetShardDone got;
        EXPECT_FALSE(DecodeShardDone(padded, &got).ok());
        break;
      }
      default: {
        uint64_t got = 0;
        EXPECT_FALSE(DecodeShardStop(padded, &got).ok());
        break;
      }
    }
  }
}

// --- live mutation frames ----------------------------------------------

TEST(WireCodecTest, MutateRequestRoundTripProperty) {
  Rng rng(61);
  for (int i = 0; i < 300; ++i) {
    const NetMutateRequest req = RandomMutateRequest(rng);
    const uint64_t id = rng.Next();
    const std::string frame = EncodeMutateRequestFrame(req, id);
    FrameHeader h;
    ASSERT_TRUE(DecodeFrameHeader(frame, &h).ok());
    EXPECT_EQ(h.type, FrameType::kMutateRequest);
    EXPECT_EQ(h.request_id, id);
    NetMutateRequest got;
    const Status st = DecodeMutateRequest(
        std::string_view(frame).substr(kHeaderBytes), &got);
    ASSERT_TRUE(st.ok()) << st;
    ASSERT_EQ(got.mutations.size(), req.mutations.size());
    for (size_t j = 0; j < req.mutations.size(); ++j) {
      const Mutation& a = req.mutations[j];
      const Mutation& b = got.mutations[j];
      EXPECT_EQ(b.op, a.op);
      EXPECT_EQ(b.table, a.table);
      switch (a.op) {
        case Mutation::Op::kInsertRow:
          ASSERT_EQ(b.values.size(), a.values.size());
          for (size_t v = 0; v < a.values.size(); ++v) {
            EXPECT_TRUE(b.values[v] == a.values[v]);
          }
          break;
        case Mutation::Op::kDeleteRow:
          EXPECT_EQ(b.pk, a.pk);
          break;
        case Mutation::Op::kUpdateCell:
          EXPECT_EQ(b.pk, a.pk);
          EXPECT_EQ(b.column, a.column);
          EXPECT_TRUE(b.value == a.value);
          break;
      }
    }
  }
}

TEST(WireCodecTest, MutateResponseRoundTripProperty) {
  Rng rng(62);
  for (int i = 0; i < 300; ++i) {
    const NetMutateResponse resp = RandomMutateResponse(rng);
    const std::string frame = EncodeMutateResponseFrame(resp, 8);
    FrameHeader h;
    ASSERT_TRUE(DecodeFrameHeader(frame, &h).ok());
    EXPECT_EQ(h.type, FrameType::kMutateResponse);
    NetMutateResponse got;
    const Status st = DecodeMutateResponse(
        std::string_view(frame).substr(kHeaderBytes), &got);
    ASSERT_TRUE(st.ok()) << st;
    EXPECT_EQ(got.applied, resp.applied);
    EXPECT_EQ(got.epoch, resp.epoch);
    EXPECT_EQ(got.interrupted, resp.interrupted);
    EXPECT_EQ(got.error, resp.error);
    EXPECT_EQ(got.touched, resp.touched);
    EXPECT_TRUE(BitEqual(got.server_seconds, resp.server_seconds));
  }
}

TEST(WireCodecTest, TruncatedMutateFramesEveryPrefixRejected) {
  Rng rng(63);
  // Use a request with at least one of each op so every branch of the
  // decoder sees truncation.
  NetMutateRequest req;
  req.mutations.push_back(Mutation::Insert(
      "Movie", {Value::Int(7), Value::Text("alpha beta"), Value::Null()}));
  req.mutations.push_back(Mutation::Delete("Movie", 3));
  req.mutations.push_back(
      Mutation::Update("Person", 9, "PersonName", Value::Text("gamma")));
  const std::string frames[] = {
      EncodeMutateRequestFrame(req, 1),
      EncodeMutateResponseFrame(RandomMutateResponse(rng), 2),
  };
  for (const std::string& frame : frames) {
    FrameHeader h;
    ASSERT_TRUE(DecodeFrameHeader(frame, &h).ok());
    const std::string_view payload =
        std::string_view(frame).substr(kHeaderBytes);
    for (size_t len = 0; len < payload.size(); ++len) {
      const std::string_view prefix = payload.substr(0, len);
      if (h.type == FrameType::kMutateRequest) {
        NetMutateRequest got;
        EXPECT_FALSE(DecodeMutateRequest(prefix, &got).ok())
            << "prefix of " << len << " bytes decoded";
      } else {
        NetMutateResponse got;
        EXPECT_FALSE(DecodeMutateResponse(prefix, &got).ok())
            << "prefix of " << len << " bytes decoded";
      }
    }
    std::string padded(payload);
    padded.push_back('\0');
    if (h.type == FrameType::kMutateRequest) {
      NetMutateRequest got;
      EXPECT_FALSE(DecodeMutateRequest(padded, &got).ok());
    } else {
      NetMutateResponse got;
      EXPECT_FALSE(DecodeMutateResponse(padded, &got).ok());
    }
  }
}

TEST(WireCodecTest, MutateRequestHostileFieldsRejected) {
  {
    // Operation count above the cap: rejected before any allocation.
    WireWriter w;
    w.PutU32(kMaxWireMutations + 1);
    NetMutateRequest got;
    const Status st = DecodeMutateRequest(w.data(), &got);
    ASSERT_FALSE(st.ok());
    EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
  }
  {
    // Unknown op tag.
    WireWriter w;
    w.PutU32(1);
    w.PutU8(3);  // ops are 0/1/2
    w.PutString("Movie");
    NetMutateRequest got;
    EXPECT_FALSE(DecodeMutateRequest(w.data(), &got).ok());
  }
  {
    // Insert claiming more values than the cap.
    WireWriter w;
    w.PutU32(1);
    w.PutU8(0);  // kInsertRow
    w.PutString("Movie");
    w.PutU32(kMaxWireMutationValues + 1);
    NetMutateRequest got;
    EXPECT_FALSE(DecodeMutateRequest(w.data(), &got).ok());
  }
  {
    // Unknown value kind tag.
    WireWriter w;
    w.PutU32(1);
    w.PutU8(0);  // kInsertRow
    w.PutString("Movie");
    w.PutU32(1);
    w.PutU8(9);  // kinds are 0/1/2
    NetMutateRequest got;
    EXPECT_FALSE(DecodeMutateRequest(w.data(), &got).ok());
  }
  {
    // Response claiming an absurd touched-table count.
    WireWriter w;
    w.PutI64(1);
    w.PutU64(1);
    w.PutU8(0);
    w.PutString("");
    w.PutU32(kMaxWireMutations + 1);
    NetMutateResponse got;
    EXPECT_FALSE(DecodeMutateResponse(w.data(), &got).ok());
  }
}

// --- slow-log frames ----------------------------------------------------

TEST(WireCodecTest, SlowLogFrames) {
  // kSlowLogRequest: empty payload, id echoed.
  FrameHeader h;
  ASSERT_TRUE(DecodeFrameHeader(EncodeSlowLogRequestFrame(31), &h).ok());
  EXPECT_EQ(h.type, FrameType::kSlowLogRequest);
  EXPECT_EQ(h.request_id, 31u);
  EXPECT_EQ(h.payload_len, 0u);
  EXPECT_TRUE(DecodeSlowLogRequest(std::string_view()).ok());
  // Any payload bytes on the request are trailing garbage.
  EXPECT_FALSE(DecodeSlowLogRequest(std::string_view("\0", 1)).ok());
  EXPECT_FALSE(DecodeSlowLogRequest("x").ok());

  // The response carries the JSON text verbatim (no re-encoding), like
  // the stats/trace responses.
  const std::string json =
      "{\"slow_log\":[{\"seq\":1,\"elapsed_ms\":12.5}]}";
  const std::string frame = EncodeSlowLogResponseFrame(json, 32);
  ASSERT_TRUE(DecodeFrameHeader(frame, &h).ok());
  EXPECT_EQ(h.type, FrameType::kSlowLogResponse);
  EXPECT_EQ(h.request_id, 32u);
  EXPECT_EQ(h.payload_len, json.size());
  EXPECT_EQ(frame.substr(kHeaderBytes), json);
}

// --- hostile profile / trace-segment sections ---------------------------

TEST(WireCodecTest, ProfileHostileFieldsRejected) {
  {
    // has_profile must be a strict boolean: the flag byte is the last
    // payload byte when no profile follows.
    NetSearchResponse resp;
    std::string frame = EncodeSearchResponseFrame(resp, 1);
    frame.back() = 2;
    NetSearchResponse got;
    const Status st = DecodeSearchResponse(
        std::string_view(frame).substr(kHeaderBytes), &got);
    ASSERT_FALSE(st.ok());
    EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
  }
  {
    // Shard-row count above the cap: the u32 count is the last 4 payload
    // bytes when the profile carries no rows.
    NetSearchResponse resp;
    resp.has_profile = true;
    std::string frame = EncodeSearchResponseFrame(resp, 2);
    const uint32_t hostile = static_cast<uint32_t>(kMaxWireProfileShards) + 1;
    memcpy(frame.data() + frame.size() - 4, &hostile, sizeof(hostile));
    NetSearchResponse got;
    EXPECT_FALSE(DecodeSearchResponse(
                     std::string_view(frame).substr(kHeaderBytes), &got)
                     .ok());
  }
}

TEST(WireCodecTest, SegmentHostileFieldsRejected) {
  {
    // has_segment must be a strict boolean (last payload byte when the
    // segment is absent).
    NetShardDone done;
    std::string frame = EncodeShardDoneFrame(done, 1);
    frame.back() = 2;
    NetShardDone got;
    EXPECT_FALSE(
        DecodeShardDone(std::string_view(frame).substr(kHeaderBytes), &got)
            .ok());
  }
  {
    // Event count above the cap: the u32 count is the last 4 payload
    // bytes when the segment holds no events.
    NetShardDone done;
    done.has_segment = true;
    std::string frame = EncodeShardDoneFrame(done, 2);
    const uint32_t hostile = kMaxWireTraceEvents + 1;
    memcpy(frame.data() + frame.size() - 4, &hostile, sizeof(hostile));
    NetShardDone got;
    EXPECT_FALSE(
        DecodeShardDone(std::string_view(frame).substr(kHeaderBytes), &got)
            .ok());
  }
  {
    // Arg count above the cap: the u32 nargs is the last 4 payload bytes
    // when the final event carries no args.
    NetShardDone done;
    done.has_segment = true;
    obs::TraceSegment::Event e;
    e.category = "net";
    e.name = "frame_decode";
    done.segment.events.push_back(e);
    std::string frame = EncodeShardDoneFrame(done, 3);
    const uint32_t hostile = kMaxWireTraceArgs + 1;
    memcpy(frame.data() + frame.size() - 4, &hostile, sizeof(hostile));
    NetShardDone got;
    EXPECT_FALSE(
        DecodeShardDone(std::string_view(frame).substr(kHeaderBytes), &got)
            .ok());
  }
  {
    // Encoders truncate instead of emitting over-cap counts: a segment
    // with too many events round-trips to the cap, not a decode error.
    NetShardDone done;
    done.has_segment = true;
    obs::TraceSegment::Event e;
    e.category = "net";
    e.name = "x";
    done.segment.events.assign(kMaxWireTraceEvents + 10, e);
    const std::string frame = EncodeShardDoneFrame(done, 4);
    NetShardDone got;
    ASSERT_TRUE(
        DecodeShardDone(std::string_view(frame).substr(kHeaderBytes), &got)
            .ok());
    EXPECT_EQ(got.segment.events.size(), kMaxWireTraceEvents);
  }
}

TEST(WireCodecTest, TruncatedHeaderRejected) {
  std::string buf;
  AppendFrameHeader(FrameHeader{}, &buf);
  for (size_t len = 0; len < kHeaderBytes; ++len) {
    FrameHeader h;
    EXPECT_FALSE(DecodeFrameHeader(buf.substr(0, len), &h).ok());
  }
}

TEST(WireCodecTest, GarbagePrefixRejected) {
  Rng rng(21);
  for (int i = 0; i < 200; ++i) {
    std::string buf = RandomBytes(rng, 64);
    while (buf.size() < kHeaderBytes) buf.push_back('\0');
    // Force a magic mismatch (a random prefix collides with probability
    // 2^-32; make it deterministic).
    buf[0] = static_cast<char>(~buf[0]);
    if (memcmp(buf.data(), "\x50\x57\x34\x53", 4) == 0) buf[1] ^= 1;
    FrameHeader h;
    const Status st = DecodeFrameHeader(buf, &h);
    ASSERT_FALSE(st.ok());
    EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
  }
}

TEST(WireCodecTest, VersionMismatchKeepsRequestId) {
  std::string buf;
  AppendFrameHeader(FrameHeader{}, &buf);
  buf[4] = 9;  // version byte
  // Re-stamp a recognizable request id (offset 8, little-endian).
  for (int i = 0; i < 8; ++i) buf[8 + i] = 0;
  buf[8] = 0x2a;
  FrameHeader h;
  const Status st = DecodeFrameHeader(buf, &h);
  ASSERT_FALSE(st.ok());
  // FailedPrecondition, not InvalidArgument: the framing is intact and a
  // reply can be addressed to the request that provoked it.
  EXPECT_EQ(st.code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(h.request_id, 42u);
  EXPECT_EQ(h.version, 9);
}

TEST(WireCodecTest, UnknownFrameTypeRejected) {
  // 18 is the first unassigned type now that the slow-log frames (16-17)
  // are part of the protocol.
  for (uint8_t type : {uint8_t{0}, uint8_t{18}, uint8_t{255}}) {
    std::string buf;
    AppendFrameHeader(FrameHeader{}, &buf);
    buf[5] = static_cast<char>(type);
    FrameHeader h;
    const Status st = DecodeFrameHeader(buf, &h);
    ASSERT_FALSE(st.ok());
    EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
  }
}

TEST(WireCodecTest, HostileStringLengthDoesNotAllocate) {
  // A string length of 4 GiB - 1 with 4 bytes of actual data: the reader
  // must fail on the bounds check, not attempt the allocation.
  WireWriter w;
  w.PutU32(0xffffffffu);
  std::string payload = w.Take();
  payload += "abcd";
  WireReader r(payload);
  std::string s;
  EXPECT_FALSE(r.ReadString(&s));
  EXPECT_TRUE(r.failed());
}

TEST(WireCodecTest, OversizedSpreadsheetRejected) {
  WireWriter w;
  w.PutU32(4096);  // rows (at the cap)
  w.PutU32(4096);  // cols: rows * cols > kMaxCells
  NetSearchRequest req;
  const Status st = DecodeSearchRequest(w.data(), &req);
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
}

// --- deterministic fuzz corpus -----------------------------------------
//
// Three generations of hostile input, all seeded: pure noise, noise with
// a valid magic/header grafted on, and valid frames with bit flips. The
// assertion is simply "returns, with a Status" — memory safety is the
// sanitizer's job (these suites run under the asan CI configuration).

TEST(WireFuzzTest, DecodersSurvivePureNoise) {
  Rng rng(0xf00d);
  for (int i = 0; i < 2000; ++i) {
    const std::string noise = RandomBytes(rng, 96);
    FrameHeader h;
    (void)DecodeFrameHeader(noise, &h);
    NetSearchRequest req;
    (void)DecodeSearchRequest(noise, &req);
    NetSearchResponse resp;
    (void)DecodeSearchResponse(noise, &resp);
    NetError err;
    (void)DecodeError(noise, &err);
    NetShardSearchRequest sreq;
    (void)DecodeShardSearchRequest(noise, &sreq);
    NetShardPartial partial;
    (void)DecodeShardPartial(noise, &partial);
    NetShardDone done;
    (void)DecodeShardDone(noise, &done);
    uint64_t target;
    (void)DecodeShardStop(noise, &target);
    NetMutateRequest mreq;
    (void)DecodeMutateRequest(noise, &mreq);
    NetMutateResponse mresp;
    (void)DecodeMutateResponse(noise, &mresp);
    (void)DecodeSlowLogRequest(noise);
  }
}

TEST(WireFuzzTest, DecodersSurviveValidHeaderRandomPayload) {
  Rng rng(0xbeef);
  for (int i = 0; i < 2000; ++i) {
    const std::string payload = RandomBytes(rng, 96);
    FrameHeader h;
    h.type = static_cast<FrameType>(
        1 + rng.Uniform(static_cast<uint64_t>(FrameType::kSlowLogResponse)));
    h.request_id = rng.Next();
    h.payload_len = static_cast<uint32_t>(payload.size());
    std::string frame;
    AppendFrameHeader(h, &frame);
    frame += payload;
    FrameHeader got;
    ASSERT_TRUE(DecodeFrameHeader(frame, &got).ok());
    const std::string_view body = std::string_view(frame).substr(kHeaderBytes);
    NetSearchRequest req;
    (void)DecodeSearchRequest(body, &req);
    NetSearchResponse resp;
    (void)DecodeSearchResponse(body, &resp);
    NetError err;
    (void)DecodeError(body, &err);
    NetShardSearchRequest sreq;
    (void)DecodeShardSearchRequest(body, &sreq);
    NetShardPartial partial;
    (void)DecodeShardPartial(body, &partial);
    NetShardDone done;
    (void)DecodeShardDone(body, &done);
    uint64_t target;
    (void)DecodeShardStop(body, &target);
    NetMutateRequest mreq;
    (void)DecodeMutateRequest(body, &mreq);
    NetMutateResponse mresp;
    (void)DecodeMutateResponse(body, &mresp);
    (void)DecodeSlowLogRequest(body);
  }
}

TEST(WireFuzzTest, DecodersSurviveBitFlippedValidFrames) {
  Rng rng(0xcafe);
  for (int i = 0; i < 700; ++i) {
    std::string frame;
    switch (i % 7) {
      case 0:
        frame = EncodeSearchRequestFrame(RandomRequest(rng), rng.Next());
        break;
      case 1:
        frame = EncodeSearchResponseFrame(RandomResponse(rng), rng.Next());
        break;
      case 2:
        frame =
            EncodeShardSearchRequestFrame(RandomShardRequest(rng), rng.Next());
        break;
      case 3:
        frame = EncodeShardPartialFrame(RandomShardPartial(rng), rng.Next());
        break;
      case 4:
        frame = EncodeMutateRequestFrame(RandomMutateRequest(rng), rng.Next());
        break;
      case 5:
        frame =
            EncodeMutateResponseFrame(RandomMutateResponse(rng), rng.Next());
        break;
      default:
        frame = EncodeShardDoneFrame(RandomShardDone(rng), rng.Next());
        break;
    }
    const int flips = 1 + static_cast<int>(rng.Uniform(8));
    for (int f = 0; f < flips; ++f) {
      const size_t pos = rng.Uniform(frame.size());
      frame[pos] = static_cast<char>(
          static_cast<unsigned char>(frame[pos]) ^ (1u << rng.Uniform(8)));
    }
    const std::string_view body = std::string_view(frame).substr(
        std::min(frame.size(), kHeaderBytes));
    NetSearchRequest req;
    (void)DecodeSearchRequest(body, &req);
    NetSearchResponse resp;
    (void)DecodeSearchResponse(body, &resp);
    NetError err;
    (void)DecodeError(body, &err);
    NetShardSearchRequest sreq;
    (void)DecodeShardSearchRequest(body, &sreq);
    NetShardPartial partial;
    (void)DecodeShardPartial(body, &partial);
    NetShardDone done;
    (void)DecodeShardDone(body, &done);
    NetMutateRequest mreq;
    (void)DecodeMutateRequest(body, &mreq);
    NetMutateResponse mresp;
    (void)DecodeMutateResponse(body, &mresp);
    (void)DecodeSlowLogRequest(body);
  }
}

}  // namespace
}  // namespace s4::net
