// PJQuery canonicalization, minimality, sub-PJ enumeration and SQL.
#include <gtest/gtest.h>

#include "enumerate/enumerator.h"
#include "query/pj_query.h"
#include "score/score_context.h"
#include "tests/test_util.h"

namespace s4 {
namespace {

using testing::Fig2aSheet;
using testing::TpchDb;
using testing::TpchGraph;
using testing::TpchIndex;

SchemaEdgeId EdgeBetween(const std::string& src, const std::string& dst) {
  const SchemaGraph& g = TpchGraph();
  for (SchemaEdgeId e = 0; e < g.NumEdges(); ++e) {
    if (TpchDb().table(g.edge(e).src).name() == src &&
        TpchDb().table(g.edge(e).dst).name() == dst) {
      return e;
    }
  }
  return -1;
}

TableId TableByName(const std::string& name) {
  return TpchDb().FindTable(name)->id();
}

int32_t Col(const std::string& table, const std::string& col) {
  return TpchDb().FindTable(table)->ColumnIndex(col);
}

// Customer -> Nation with A -> CustName, B -> NatName.
PJQuery CustomerNationQuery() {
  JoinTree t = JoinTree::Single(TableByName("Customer"));
  TreeNodeId nation = t.AddChild(0, TpchGraph(),
                                 EdgeBetween("Customer", "Nation"),
                                 EdgeDir::kForward);
  return PJQuery(t, {ProjectionBinding{0, 0, Col("Customer", "CustName")},
                     ProjectionBinding{1, nation, Col("Nation", "NatName")}});
}

TEST(PJQueryTest, SignatureInvariantToConstructionOrder) {
  PJQuery a = CustomerNationQuery();

  // Same query built from the Nation side.
  JoinTree t = JoinTree::Single(TableByName("Nation"));
  TreeNodeId cust = t.AddChild(0, TpchGraph(),
                               EdgeBetween("Customer", "Nation"),
                               EdgeDir::kBackward);
  PJQuery b(t, {ProjectionBinding{0, cust, Col("Customer", "CustName")},
                ProjectionBinding{1, 0, Col("Nation", "NatName")}});

  EXPECT_EQ(a.signature(), b.signature());
  EXPECT_TRUE(a == b);
}

TEST(PJQueryTest, DifferentMappingsDifferentSignatures) {
  PJQuery a = CustomerNationQuery();

  JoinTree t = JoinTree::Single(TableByName("Customer"));
  TreeNodeId nation = t.AddChild(0, TpchGraph(),
                                 EdgeBetween("Customer", "Nation"),
                                 EdgeDir::kForward);
  // Swap which ES column maps where.
  PJQuery b(t, {ProjectionBinding{1, 0, Col("Customer", "CustName")},
                ProjectionBinding{0, nation, Col("Nation", "NatName")}});
  EXPECT_NE(a.signature(), b.signature());
}

TEST(PJQueryTest, MinimalShape) {
  PJQuery good = CustomerNationQuery();
  EXPECT_TRUE(good.IsMinimalShape());

  // Nation leaf unbound -> not minimal.
  JoinTree t = JoinTree::Single(TableByName("Customer"));
  t.AddChild(0, TpchGraph(), EdgeBetween("Customer", "Nation"),
             EdgeDir::kForward);
  PJQuery bad(t, {ProjectionBinding{0, 0, Col("Customer", "CustName")}});
  EXPECT_FALSE(bad.IsMinimalShape());
}

TEST(PJQueryTest, ProjectionColumnsDeduplicated) {
  JoinTree t = JoinTree::Single(TableByName("Customer"));
  // Two ES columns mapped to the same projection column: C has size 1,
  // phi stays surjective (Def 2).
  PJQuery q(t, {ProjectionBinding{0, 0, Col("Customer", "CustName")},
                ProjectionBinding{1, 0, Col("Customer", "CustName")}});
  EXPECT_EQ(q.ProjectionColumns().size(), 1u);
  EXPECT_EQ(q.bindings().size(), 2u);
}

TEST(PJQueryTest, SubQueryEnumerationCounts) {
  PJQuery q = CustomerNationQuery();
  // 2 nodes: type-i at each node + type-ii at the non-root = 3.
  EXPECT_EQ(q.EnumerateSubQueries().size(), 3u);
}

// Figure 3: the two sub-PJ queries (Customer->Nation with B, and Part
// with C) are shared between queries (i) and (iii) — their cache keys
// must collide across the two distinct PJ queries.
TEST(PJQueryTest, Fig3SharedSubQueriesAcrossQueries) {
  const IndexSet& index = TpchIndex();
  ExampleSpreadsheet sheet = Fig2aSheet(index);
  ScoreContext ctx(index, sheet, ScoreParams{});
  EnumerationResult result = EnumerateCandidates(TpchGraph(), ctx);

  const PJQuery* qi = nullptr;
  const PJQuery* qiii = nullptr;
  for (const CandidateQuery& c : result.candidates) {
    if (c.query.tree().size() != 5) continue;
    for (const ProjectionBinding& b : c.query.bindings()) {
      if (b.es_column != 0) continue;
      const Table& t = TpchDb().table(c.query.tree().node(b.node).table);
      if (t.name() == "Customer") qi = &c.query;
      if (t.name() == "Orders") qiii = &c.query;
    }
  }
  ASSERT_NE(qi, nullptr);
  ASSERT_NE(qiii, nullptr);

  std::set<std::string> keys_i, keys_iii;
  for (const SubPJQuery& s : qi->EnumerateSubQueries()) {
    keys_i.insert(s.cache_key);
  }
  for (const SubPJQuery& s : qiii->EnumerateSubQueries()) {
    keys_iii.insert(s.cache_key);
  }
  std::vector<std::string> shared;
  std::set_intersection(keys_i.begin(), keys_i.end(), keys_iii.begin(),
                        keys_iii.end(), std::back_inserter(shared));
  // At least the Part-with-C sub-PJ is shared (the Customer->Nation
  // sub-PJ of (i) carries mapping A->CustName which (iii) does not).
  EXPECT_GE(shared.size(), 1u);
}

TEST(PJQueryTest, SubQueryLinkSpecs) {
  PJQuery q = CustomerNationQuery();
  bool found_root = false, found_leaf = false;
  for (const SubPJQuery& s : q.EnumerateSubQueries()) {
    if (s.kind == SubPJQuery::Kind::kSubtree &&
        s.anchor == q.tree().root()) {
      EXPECT_EQ(s.link.kind, LinkSpec::Kind::kByPk);
      EXPECT_EQ(s.tree.size(), q.tree().size());
      found_root = true;
    }
    if (s.kind == SubPJQuery::Kind::kSubtree && s.anchor != q.tree().root()) {
      // Orientation decides the key: Customer holds the FK (if Customer
      // is root) => child keyed by its PK; Nation-rooted canonical form
      // flips it. Just check consistency with the tree.
      const JoinTree::Node& n = q.tree().node(s.anchor);
      if (n.parent_holds_fk) {
        EXPECT_EQ(s.link.kind, LinkSpec::Kind::kByPk);
      } else {
        EXPECT_EQ(s.link.kind, LinkSpec::Kind::kByFk);
        EXPECT_EQ(s.link.edge, n.edge_to_parent);
      }
      found_leaf = true;
    }
  }
  EXPECT_TRUE(found_root);
  EXPECT_TRUE(found_leaf);
}

TEST(PJQueryTest, ToSqlContainsJoinsAndAliases) {
  PJQuery q = CustomerNationQuery();
  std::string sql = q.ToSql(TpchDb());
  EXPECT_NE(sql.find("SELECT"), std::string::npos);
  EXPECT_NE(sql.find("AS A"), std::string::npos);
  EXPECT_NE(sql.find("AS B"), std::string::npos);
  EXPECT_NE(sql.find("JOIN"), std::string::npos);
  EXPECT_NE(sql.find("NatId"), std::string::npos);
}

TEST(PJQueryTest, ToStringListsMappings) {
  PJQuery q = CustomerNationQuery();
  std::string s = q.ToString(TpchDb());
  EXPECT_NE(s.find("A->Customer.CustName"), std::string::npos);
  EXPECT_NE(s.find("B->Nation.NatName"), std::string::npos);
}

TEST(PJQueryTest, SingleNodeQuerySubQueries) {
  JoinTree t = JoinTree::Single(TableByName("Part"));
  PJQuery q(t, {ProjectionBinding{0, 0, Col("Part", "PartName")}});
  auto subs = q.EnumerateSubQueries();
  ASSERT_EQ(subs.size(), 1u);
  EXPECT_EQ(subs[0].kind, SubPJQuery::Kind::kSubtree);
  EXPECT_EQ(subs[0].link.kind, LinkSpec::Kind::kByPk);
}

}  // namespace
}  // namespace s4
