// Index layer tests: inverted indexes, the (key, fk) snapshot, cell
// lengths, and Table-1 style size accounting.
#include <gtest/gtest.h>

#include "index/index_set.h"
#include "tests/test_util.h"

namespace s4 {
namespace {

using testing::TpchDb;
using testing::TpchIndex;

int32_t Gid(const std::string& table, const std::string& column) {
  const Table* t = TpchDb().FindTable(table);
  return TpchIndex().column_ids().Gid(
      ColumnRef{t->id(), t->ColumnIndex(column)});
}

TEST(ColumnIdsTest, RoundTrip) {
  const ColumnIds& ids = TpchIndex().column_ids();
  for (TableId t = 0; t < TpchDb().NumTables(); ++t) {
    for (int32_t c = 0; c < TpchDb().table(t).NumColumns(); ++c) {
      ColumnRef ref{t, c};
      EXPECT_EQ(ids.FromGid(ids.Gid(ref)), ref);
    }
  }
  EXPECT_EQ(ids.NumColumns(), 19);  // 7 tables, 19 columns total
}

TEST(ColumnIndexTest, TermToColumns) {
  const IndexSet& index = TpchIndex();
  TermId kevin = index.dict().Lookup("kevin");
  ASSERT_NE(kevin, kInvalidTermId);
  const std::vector<int32_t>* cols = index.column_index().Find(kevin);
  ASSERT_NE(cols, nullptr);
  // 'kevin' appears in Customer.CustName, Orders.Clerk, Supplier.SuppName.
  std::set<int32_t> got(cols->begin(), cols->end());
  EXPECT_EQ(got, (std::set<int32_t>{Gid("Customer", "CustName"),
                                    Gid("Orders", "Clerk"),
                                    Gid("Supplier", "SuppName")}));
  EXPECT_EQ(index.column_index().Find(kInvalidTermId), nullptr);
}

TEST(RowIndexTest, PostingsWithFrequencies) {
  const IndexSet& index = TpchIndex();
  TermId usa = index.dict().Lookup("usa");
  ASSERT_NE(usa, kInvalidTermId);
  const std::vector<Posting>* plist =
      index.row_index().Find(usa, Gid("Nation", "NatName"));
  ASSERT_NE(plist, nullptr);
  ASSERT_EQ(plist->size(), 1u);
  EXPECT_EQ((*plist)[0].row, 0);  // first Nation row
  EXPECT_EQ((*plist)[0].tf, 1);
  EXPECT_EQ(index.row_index().PostingLength(usa, Gid("Part", "PartName")),
            0);
}

TEST(KfkSnapshotTest, KeysMatchTables) {
  const IndexSet& index = TpchIndex();
  const KfkSnapshot& snap = index.snapshot();
  const Table* li = TpchDb().FindTable("LineItem");
  EXPECT_EQ(snap.NumRows(li->id()), li->NumRows());
  EXPECT_EQ(snap.Pk(li->id()), li->IntColumn(li->primary_key_column()));
}

TEST(KfkSnapshotTest, FkArraysAligned) {
  const IndexSet& index = TpchIndex();
  const KfkSnapshot& snap = index.snapshot();
  const auto& fks = TpchDb().foreign_keys();
  for (size_t e = 0; e < fks.size(); ++e) {
    const Table& src = TpchDb().table(fks[e].src_table);
    ASSERT_EQ(snap.Fk(static_cast<int32_t>(e)).size(),
              static_cast<size_t>(src.NumRows()));
    for (int64_t r = 0; r < src.NumRows(); ++r) {
      EXPECT_TRUE(snap.FkValid(static_cast<int32_t>(e), r));
      EXPECT_EQ(snap.Fk(static_cast<int32_t>(e))[r],
                src.GetInt(r, fks[e].src_column));
    }
  }
}

TEST(IndexSetTest, CellLengths) {
  const IndexSet& index = TpchIndex();
  const std::vector<uint16_t>* lengths =
      index.CellLengths(Gid("Part", "PartName"));
  ASSERT_NE(lengths, nullptr);
  EXPECT_EQ((*lengths)[0], 2);  // "Xbox One"
  EXPECT_EQ((*lengths)[1], 2);  // "iPhone 6"
  // Key columns have no lengths.
  EXPECT_EQ(index.CellLengths(Gid("Part", "PartId")), nullptr);
}

TEST(IndexSetTest, StatsReport) {
  IndexStats stats = TpchIndex().stats();
  EXPECT_EQ(stats.num_tokens, 20);
  EXPECT_GT(stats.num_postings, 0);
  EXPECT_GT(stats.inverted_index_bytes, 0u);
  EXPECT_GT(stats.kfk_snapshot_bytes, 0u);
}

TEST(IndexSetTest, RequiresFinalizedDatabase) {
  Database db;
  auto t = db.AddTable("T");
  ASSERT_TRUE(t.ok());
  ASSERT_TRUE((*t)->AddColumn("Id", ColumnType::kInt64).ok());
  ASSERT_TRUE((*t)->SetPrimaryKey(0).ok());
  EXPECT_FALSE(IndexSet::Build(db).ok());  // not finalized
}

TEST(IndexSetTest, NGramIndexBuilds) {
  IndexBuildOptions opts;
  opts.tokenizer.mode = TokenizerMode::kNGram;
  auto index = IndexSet::Build(TpchDb(), opts);
  ASSERT_TRUE(index.ok());
  // The 3-gram "xbo" from "xbox" must be indexed.
  TermId g = (*index)->dict().Lookup("xbo");
  EXPECT_NE(g, kInvalidTermId);
}

}  // namespace
}  // namespace s4
