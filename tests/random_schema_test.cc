// Adversarial property tests over randomly generated schemas: arbitrary
// FK topologies, multi-edges, self-references, NULL FKs, empty tables,
// and a fully shared vocabulary. Cross-validates the hash-join
// evaluator against brute force and checks strategy agreement.
#include <gtest/gtest.h>

#include "common/rng.h"
#include "common/string_util.h"
#include "datagen/random_schema.h"
#include "enumerate/enumerator.h"
#include "strategy/strategy.h"
#include "tests/test_util.h"

namespace s4 {
namespace {

class RandomSchemaTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RandomSchemaTest, EvaluatorAndStrategiesConsistent) {
  const uint64_t seed = GetParam();
  datagen::RandomSchemaOptions opts;
  opts.seed = seed;
  opts.num_tables = 4 + static_cast<int32_t>(seed % 4);
  auto db = datagen::MakeRandomSchema(opts);
  ASSERT_TRUE(db.ok()) << db.status();

  auto index = IndexSet::Build(*db);
  ASSERT_TRUE(index.ok());
  SchemaGraph graph(*db);

  // Random spreadsheet over the shared vocabulary.
  Rng rng(seed * 77 + 5);
  std::vector<std::vector<std::string>> cells(2);
  for (auto& row : cells) {
    for (int c = 0; c < 2; ++c) {
      std::string cell = StrFormat(
          "w%lld", static_cast<long long>(rng.Uniform(opts.vocab_size)));
      if (rng.Bernoulli(0.4)) {
        cell += StrFormat(
            " w%lld",
            static_cast<long long>(rng.Uniform(opts.vocab_size)));
      }
      row.push_back(cell);
    }
  }
  auto sheet =
      ExampleSpreadsheet::FromCells(cells, (*index)->tokenizer());
  ASSERT_TRUE(sheet.ok());

  ScoreContext ctx(**index, *sheet, ScoreParams{});
  EnumerationOptions eopts;
  eopts.max_tree_size = 3;
  eopts.max_queries = 4000;
  EnumerationResult result = EnumerateCandidates(graph, ctx, eopts);

  // Evaluator vs brute force on a sample of candidates.
  testing::BruteForceEvaluator reference(**index, *sheet);
  Evaluator ev(ctx);
  const size_t step = std::max<size_t>(1, result.candidates.size() / 40);
  for (size_t i = 0; i < result.candidates.size(); i += step) {
    const PJQuery& q = result.candidates[i].query;
    EvalCounters counters;
    std::vector<double> got = ev.RowScores(q, nullptr, &counters);
    std::vector<double> want = reference.RowScores(q);
    for (size_t t = 0; t < got.size(); ++t) {
      EXPECT_DOUBLE_EQ(got[t], want[t])
          << "seed " << seed << " " << q.ToString(*db);
    }
    // Warm-cache agreement.
    SubQueryCache cache(8u << 20);
    EvalOptions warm_opts;
    warm_opts.offer_to_cache = true;
    std::vector<double> warm = ev.RowScores(q, &cache, &counters, warm_opts);
    std::vector<double> warm2 =
        ev.RowScores(q, &cache, &counters, warm_opts);
    for (size_t t = 0; t < got.size(); ++t) {
      EXPECT_DOUBLE_EQ(got[t], warm[t]) << "seed " << seed;
      EXPECT_DOUBLE_EQ(got[t], warm2[t]) << "seed " << seed;
    }
  }

  // Strategy agreement.
  SearchOptions options;
  options.k = 5;
  options.enumeration = eopts;
  PreparedSearch prep(**index, graph, *sheet, options);
  SearchResult naive = RunNaive(prep, options);
  SearchResult baseline = RunBaseline(prep, options);
  SearchResult fast = RunFastTopK(prep, options);
  ASSERT_EQ(naive.topk.size(), baseline.topk.size());
  ASSERT_EQ(naive.topk.size(), fast.topk.size());
  for (size_t i = 0; i < naive.topk.size(); ++i) {
    EXPECT_NEAR(naive.topk[i].score, baseline.topk[i].score, 1e-9)
        << "seed " << seed;
    EXPECT_NEAR(naive.topk[i].score, fast.topk[i].score, 1e-9)
        << "seed " << seed;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomSchemaTest,
                         ::testing::Range<uint64_t>(1, 15));

TEST(RandomSchemaGenTest, HonorsIntegrity) {
  for (uint64_t seed : {3u, 9u, 21u}) {
    datagen::RandomSchemaOptions opts;
    opts.seed = seed;
    auto db = datagen::MakeRandomSchema(opts);
    ASSERT_TRUE(db.ok());
    // Finalize(check_integrity=true) already ran inside the generator;
    // re-check and validate structure.
    EXPECT_TRUE(db->Finalize(true).ok());
    EXPECT_EQ(db->NumTables(), opts.num_tables);
    EXPECT_GE(db->foreign_keys().size(),
              static_cast<size_t>(opts.num_tables - 1));
  }
}

TEST(RandomSchemaGenTest, Deterministic) {
  datagen::RandomSchemaOptions opts;
  opts.seed = 1234;
  auto a = datagen::MakeRandomSchema(opts);
  auto b = datagen::MakeRandomSchema(opts);
  ASSERT_TRUE(a.ok() && b.ok());
  ASSERT_EQ(a->NumTables(), b->NumTables());
  for (TableId t = 0; t < a->NumTables(); ++t) {
    ASSERT_EQ(a->table(t).NumRows(), b->table(t).NumRows());
    for (int64_t r = 0; r < a->table(t).NumRows(); ++r) {
      for (int32_t c = 0; c < a->table(t).NumColumns(); ++c) {
        EXPECT_EQ(a->table(t).GetValue(r, c), b->table(t).GetValue(r, c));
      }
    }
  }
}

}  // namespace
}  // namespace s4
