// Data generators and the example-spreadsheet workload generator.
#include <gtest/gtest.h>

#include "datagen/es_gen.h"
#include "datagen/synthetic.h"
#include "datagen/tpch_mini.h"
#include "index/index_set.h"
#include "schema/schema_graph.h"

namespace s4 {
namespace {

using datagen::EsBucket;
using datagen::EsGenerator;

TEST(TpchMiniTest, MatchesFigure1) {
  auto db = datagen::MakeTpchMini();
  ASSERT_TRUE(db.ok());
  EXPECT_EQ(db->NumTables(), 7);
  EXPECT_EQ(db->foreign_keys().size(), 7u);
  EXPECT_EQ(db->FindTable("Customer")->NumRows(), 3);
  EXPECT_EQ(db->FindTable("LineItem")->NumRows(), 4);
  EXPECT_EQ(db->FindTable("PartSupp")->NumRows(), 4);
  EXPECT_EQ(db->NumTextColumns(), 5);  // the five text columns of Sec 2.1
  const Table* cust = db->FindTable("Customer");
  EXPECT_EQ(cust->GetText(0, 1), "Rick Miller");
  EXPECT_TRUE(db->finalized());
}

TEST(CsuppSimTest, BuildsValidDatabase) {
  datagen::CsuppSimOptions opts;
  opts.num_cities = 10;
  opts.num_customers = 30;
  opts.num_products = 20;
  opts.num_agents = 10;
  opts.num_tickets = 50;
  opts.num_notes = 60;
  auto db = datagen::MakeCsuppSim(opts);
  ASSERT_TRUE(db.ok());
  EXPECT_EQ(db->NumTables(), 11);
  // Re-finalize with full referential integrity checking.
  EXPECT_TRUE(db->Finalize(/*check_integrity=*/true).ok());
  EXPECT_EQ(db->FindTable("Ticket")->NumRows(), 50);
  EXPECT_GT(db->NumTextColumns(), 10);
}

TEST(CsuppSimTest, DeterministicAcrossRuns) {
  datagen::CsuppSimOptions opts;
  opts.num_tickets = 30;
  opts.num_notes = 30;
  auto a = datagen::MakeCsuppSim(opts);
  auto b = datagen::MakeCsuppSim(opts);
  ASSERT_TRUE(a.ok() && b.ok());
  const Table* ta = a->FindTable("Ticket");
  const Table* tb = b->FindTable("Ticket");
  for (int64_t r = 0; r < ta->NumRows(); ++r) {
    EXPECT_EQ(ta->GetText(r, 1), tb->GetText(r, 1));
  }
}

TEST(CsuppSimTest, ScaleMultipliesRows) {
  datagen::CsuppSimOptions small;
  small.num_tickets = 40;
  small.num_notes = 40;
  small.num_customers = 30;
  datagen::CsuppSimOptions big = small;
  big.scale = 2;
  auto a = datagen::MakeCsuppSim(small);
  auto b = datagen::MakeCsuppSim(big);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(b->FindTable("Ticket")->NumRows(),
            2 * a->FindTable("Ticket")->NumRows());
}

TEST(AdvwSimTest, DimScaleAddsUnreferencedCopies) {
  datagen::AdvwSimOptions base;
  base.num_sales = 200;
  auto a = datagen::MakeAdvwSim(base);
  ASSERT_TRUE(a.ok());

  datagen::AdvwSimOptions scaled = base;
  scaled.dim_scale = 3;
  auto b = datagen::MakeAdvwSim(scaled);
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(b->FindTable("DimProduct")->NumRows(),
            3 * a->FindTable("DimProduct")->NumRows());
  // Fact table unchanged.
  EXPECT_EQ(b->FindTable("FactSales")->NumRows(),
            a->FindTable("FactSales")->NumRows());
  // Copies repeat the same values (first copy row == first base row).
  const Table* pa = a->FindTable("DimProduct");
  const Table* pb = b->FindTable("DimProduct");
  EXPECT_EQ(pb->GetText(pa->NumRows(), 1), pa->GetText(0, 1));
  // Referential integrity still holds.
  EXPECT_TRUE(b->Finalize(/*check_integrity=*/true).ok());
}

TEST(AdvwSimTest, FactScaleAddsReferencingCopies) {
  datagen::AdvwSimOptions base;
  base.num_sales = 150;
  datagen::AdvwSimOptions scaled = base;
  scaled.fact_scale = 4;
  auto a = datagen::MakeAdvwSim(base);
  auto b = datagen::MakeAdvwSim(scaled);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(b->FindTable("FactSales")->NumRows(),
            4 * a->FindTable("FactSales")->NumRows());
  EXPECT_EQ(b->FindTable("DimProduct")->NumRows(),
            a->FindTable("DimProduct")->NumRows());
  EXPECT_TRUE(b->Finalize(/*check_integrity=*/true).ok());
}

TEST(ImdbSimTest, BuildsValidDatabase) {
  datagen::ImdbSimOptions opts;
  opts.num_movies = 50;
  opts.num_people = 60;
  opts.num_cast = 150;
  auto db = datagen::MakeImdbSim(opts);
  ASSERT_TRUE(db.ok());
  EXPECT_EQ(db->NumTables(), 6);
  EXPECT_TRUE(db->Finalize(/*check_integrity=*/true).ok());
}

class EsGenTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    datagen::CsuppSimOptions opts;
    opts.num_cities = 15;
    opts.num_customers = 40;
    opts.num_products = 25;
    opts.num_agents = 15;
    opts.num_tickets = 120;
    opts.num_notes = 150;
    auto db = datagen::MakeCsuppSim(opts);
    ASSERT_TRUE(db.ok());
    db_ = new Database(std::move(db).value());
    auto index = IndexSet::Build(*db_);
    ASSERT_TRUE(index.ok());
    index_ = index->release();
    graph_ = new SchemaGraph(*db_);
  }

  static Database* db_;
  static IndexSet* index_;
  static SchemaGraph* graph_;
};

Database* EsGenTest::db_ = nullptr;
IndexSet* EsGenTest::index_ = nullptr;
SchemaGraph* EsGenTest::graph_ = nullptr;

TEST_F(EsGenTest, GeneratesRequestedShape) {
  EsGenerator gen(*index_, *graph_, 1);
  ASSERT_TRUE(gen.Init(6, 4).ok());
  datagen::EsGenOptions opts;
  opts.num_rows = 3;
  opts.num_cols = 3;
  opts.relationship_errors = 2;
  auto es = gen.Generate(opts);
  ASSERT_TRUE(es.ok()) << es.status();
  EXPECT_EQ(es->sheet.NumRows(), 3);
  EXPECT_EQ(es->sheet.NumColumns(), 3);
  EXPECT_TRUE(es->sheet.Validate().ok());
  // Single-token cells (paper keeps only the first token).
  for (int32_t r = 0; r < 3; ++r) {
    for (int32_t c = 0; c < 3; ++c) {
      EXPECT_EQ(es->sheet.cell(r, c).terms.size(), 1u);
    }
  }
  EXPECT_GT(es->term_frequency, 0);
  EXPECT_GE(es->source_query.tree().size(), 1);
  EXPECT_TRUE(es->source_query.IsMinimalShape());
}

TEST_F(EsGenTest, DeterministicWithSeed) {
  EsGenerator a(*index_, *graph_, 77);
  EsGenerator b(*index_, *graph_, 77);
  ASSERT_TRUE(a.Init(6, 4).ok());
  ASSERT_TRUE(b.Init(6, 4).ok());
  auto ea = a.Generate();
  auto eb = b.Generate();
  ASSERT_TRUE(ea.ok() && eb.ok());
  EXPECT_EQ(ea->sheet.ToString(), eb->sheet.ToString());
}

TEST_F(EsGenTest, ErrorFreeSheetsMatchSource) {
  EsGenerator gen(*index_, *graph_, 5);
  ASSERT_TRUE(gen.Init(6, 4).ok());
  datagen::EsGenOptions opts;
  opts.relationship_errors = 0;
  auto es = gen.Generate(opts);
  ASSERT_TRUE(es.ok());
  EXPECT_TRUE(es->sheet.Validate().ok());
}

TEST_F(EsGenTest, BucketsFollowProportions) {
  EsGenerator gen(*index_, *graph_, 13);
  ASSERT_TRUE(gen.Init(6, 4).ok());
  auto many = gen.GenerateMany(20);
  ASSERT_TRUE(many.ok());
  std::vector<EsBucket> buckets = EsGenerator::AssignBuckets(*many);
  int low = 0, med = 0, high = 0;
  for (EsBucket b : buckets) {
    if (b == EsBucket::kLow) ++low;
    if (b == EsBucket::kMedium) ++med;
    if (b == EsBucket::kHigh) ++high;
  }
  EXPECT_EQ(low, 10);
  EXPECT_EQ(med, 6);
  EXPECT_EQ(high, 4);
  EXPECT_STREQ(datagen::EsBucketName(EsBucket::kLow), "low");
}

TEST_F(EsGenTest, InitFailsWhenNotEnoughTextColumns) {
  EsGenerator gen(*index_, *graph_, 3);
  EXPECT_FALSE(gen.Init(/*min_text_columns=*/500, 3).ok());
}

}  // namespace
}  // namespace s4
