// Validates the hash-join evaluator (Appendix B.1/B.2) against a
// brute-force join reference, and its cache-aware paths.
#include <gtest/gtest.h>

#include "cache/subquery_cache.h"
#include "enumerate/enumerator.h"
#include "exec/cost_model.h"
#include "exec/evaluator.h"
#include "tests/test_util.h"

namespace s4 {
namespace {

using testing::BruteForceEvaluator;
using testing::Fig2aSheet;
using testing::TpchGraph;
using testing::TpchIndex;

class EvaluatorTest : public ::testing::Test {
 protected:
  EvaluatorTest()
      : sheet_(Fig2aSheet(TpchIndex())),
        ctx_(TpchIndex(), sheet_, ScoreParams{}),
        result_(EnumerateCandidates(TpchGraph(), ctx_)) {}

  ExampleSpreadsheet sheet_;
  ScoreContext ctx_;
  EnumerationResult result_;
};

// Every enumerated candidate's row scores match the brute-force join.
TEST_F(EvaluatorTest, MatchesBruteForceOnAllCandidates) {
  ASSERT_GT(result_.candidates.size(), 0u);
  BruteForceEvaluator reference(TpchIndex(), sheet_);
  Evaluator ev(ctx_);
  for (const CandidateQuery& c : result_.candidates) {
    EvalCounters counters;
    std::vector<double> got = ev.RowScores(c.query, nullptr, &counters);
    std::vector<double> want = reference.RowScores(c.query);
    ASSERT_EQ(got.size(), want.size());
    for (size_t t = 0; t < got.size(); ++t) {
      EXPECT_DOUBLE_EQ(got[t], want[t])
          << c.query.ToString(TpchIndex().db()) << " row " << t;
    }
  }
}

// Evaluating through a warm cache must not change any score.
TEST_F(EvaluatorTest, CacheDoesNotChangeScores) {
  Evaluator ev(ctx_);
  SubQueryCache cache(64u << 20);
  for (const CandidateQuery& c : result_.candidates) {
    EvalCounters counters;
    std::vector<double> cold = ev.RowScores(c.query, nullptr, &counters);
    EvalOptions opts;
    opts.offer_to_cache = true;
    std::vector<double> warm1 = ev.RowScores(c.query, &cache, &counters, opts);
    std::vector<double> warm2 = ev.RowScores(c.query, &cache, &counters, opts);
    EXPECT_EQ(cold, warm1) << c.query.ToString(TpchIndex().db());
    EXPECT_EQ(cold, warm2) << c.query.ToString(TpchIndex().db());
  }
  EXPECT_GT(cache.stats().hits, 0);
}

// A pre-evaluated critical sub-PJ table is picked up and reused.
TEST_F(EvaluatorTest, ReusesExplicitlyCachedSubPj) {
  // Use a multi-node candidate with a non-trivial subtree.
  const CandidateQuery* cand = nullptr;
  for (const CandidateQuery& c : result_.candidates) {
    if (c.query.tree().size() >= 3) {
      cand = &c;
      break;
    }
  }
  ASSERT_NE(cand, nullptr);

  Evaluator ev(ctx_);
  EvalCounters counters;
  std::vector<double> cold = ev.RowScores(cand->query, nullptr, &counters);

  for (const SubPJQuery& sub : cand->query.EnumerateSubQueries()) {
    if (sub.anchor == cand->query.tree().root()) continue;
    SubQueryCache cache(64u << 20);
    EvalCounters sub_counters;
    auto table = ev.EvaluateSub(sub, &cache, &sub_counters);
    ASSERT_TRUE(cache.Add(sub.cache_key, table));
    EvalCounters warm_counters;
    std::vector<double> warm =
        ev.RowScores(cand->query, &cache, &warm_counters);
    EXPECT_EQ(cold, warm) << "sub anchored at " << sub.anchor;
    EXPECT_GT(warm_counters.cache_hits, 0);
  }
}

// Restricting evaluation to a row subset zeroes the other rows and
// matches the full evaluation on the selected ones.
TEST_F(EvaluatorTest, RowSubsetEvaluation) {
  Evaluator ev(ctx_);
  for (const CandidateQuery& c : result_.candidates) {
    EvalCounters counters;
    std::vector<double> full = ev.RowScores(c.query, nullptr, &counters);
    EvalOptions opts;
    opts.es_rows = {1};
    std::vector<double> partial =
        ev.RowScores(c.query, nullptr, &counters, opts);
    EXPECT_DOUBLE_EQ(partial[1], full[1]);
    EXPECT_DOUBLE_EQ(partial[0], 0.0);
    EXPECT_DOUBLE_EQ(partial[2], 0.0);
  }
}

// The drop-zero-rows shortcut can only lower scores, never raise them.
TEST_F(EvaluatorTest, DropZeroRowsIsLowerBound) {
  Evaluator ev(ctx_);
  for (const CandidateQuery& c : result_.candidates) {
    EvalCounters counters;
    std::vector<double> exact = ev.RowScores(c.query, nullptr, &counters);
    EvalOptions opts;
    opts.drop_zero_rows = true;
    std::vector<double> dropped =
        ev.RowScores(c.query, nullptr, &counters, opts);
    for (size_t t = 0; t < exact.size(); ++t) {
      EXPECT_LE(dropped[t], exact[t] + 1e-12);
    }
  }
}

// Operator counters line up with the cost model's posting component.
TEST_F(EvaluatorTest, CountersReflectWork) {
  Evaluator ev(ctx_);
  for (const CandidateQuery& c : result_.candidates) {
    EvalCounters counters;
    ev.RowScores(c.query, nullptr, &counters);
    EXPECT_GT(counters.rows_scanned, 0);
    int64_t posting_cost = 0;
    for (const ProjectionBinding& b : c.query.bindings()) {
      const int32_t gid = TpchIndex().column_ids().Gid(
          ColumnRef{c.query.tree().node(b.node).table, b.column});
      posting_cost += ctx_.PostingCost(b.es_column, gid);
    }
    EXPECT_EQ(counters.postings_scanned, posting_cost)
        << c.query.ToString(TpchIndex().db());
  }
}

// Cost model sanity: cost(Q) > 0, discounts never increase it, and the
// discount matches the cached sub-PJ's own cost.
TEST_F(EvaluatorTest, CostModelDiscounts) {
  for (const CandidateQuery& c : result_.candidates) {
    if (c.query.tree().size() < 3) continue;
    const int64_t base = EvaluationCost(c.query, ctx_);
    EXPECT_GT(base, 0);
    auto subs = c.query.EnumerateSubQueries();
    SubQueryCache cache(64u << 20);
    // Fake-cache one non-root sub-PJ and check the discount.
    for (const SubPJQuery& sub : subs) {
      if (sub.anchor == c.query.tree().root()) continue;
      auto table = std::make_shared<SubQueryTable>();
      cache.Add(sub.cache_key, table);
      const int64_t with = EvaluationCostWithCache(c.query, subs, cache, ctx_);
      EXPECT_LE(with, base);
      EXPECT_EQ(base - with, EvaluationCost(sub.tree, sub.bindings, ctx_));
      cache.Clear();
    }
  }
}

// Sub-PJ evaluation honors the byFk link: keys must be FK values of the
// sub-PJ root's rows.
TEST_F(EvaluatorTest, SubPjLinkKeys) {
  for (const CandidateQuery& c : result_.candidates) {
    for (const SubPJQuery& sub : c.query.EnumerateSubQueries()) {
      Evaluator ev(ctx_);
      EvalCounters counters;
      auto table = ev.EvaluateSub(sub, nullptr, &counters);
      ASSERT_NE(table, nullptr);
      if (sub.link.kind == LinkSpec::Kind::kByPk) {
        // Keys must be primary keys of the root table.
        const Table& root =
            TpchIndex().db().table(sub.tree.node(0).table);
        table->ForEachScored([&](int64_t key, const double* sims) {
          (void)sims;
          EXPECT_GE(root.FindByPk(key), 0);
        });
      }
    }
  }
}

}  // namespace
}  // namespace s4
