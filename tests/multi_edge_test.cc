// Multiple foreign-key edges between the same pair of relations
// (Sec 2.1: "There can be multiple edges from R1 to R2 and we label each
// edge with the corresponding foreign key's attribute name"). A shipment
// references City twice: origin and destination. Join trees over the two
// edges are distinct queries with distinct SQL and different scores.
#include <gtest/gtest.h>

#include "enumerate/enumerator.h"
#include "strategy/strategy.h"
#include "tests/test_util.h"

namespace s4 {
namespace {

// City(CityId, CityName)
// Shipment(ShipId, Cargo, FromCityId -> City, ToCityId -> City)
Database MakeShippingDb() {
  Database db;
  Table* city = *db.AddTable("City");
  EXPECT_TRUE(city->AddColumn("CityId", ColumnType::kInt64).ok());
  EXPECT_TRUE(city->AddColumn("CityName", ColumnType::kText).ok());
  EXPECT_TRUE(city->SetPrimaryKey(0).ok());
  EXPECT_TRUE(city->AppendRow({Value::Int(1), Value::Text("Seattle")}).ok());
  EXPECT_TRUE(city->AppendRow({Value::Int(2), Value::Text("Boston")}).ok());
  EXPECT_TRUE(city->AppendRow({Value::Int(3), Value::Text("Austin")}).ok());

  Table* ship = *db.AddTable("Shipment");
  EXPECT_TRUE(ship->AddColumn("ShipId", ColumnType::kInt64).ok());
  EXPECT_TRUE(ship->AddColumn("Cargo", ColumnType::kText).ok());
  EXPECT_TRUE(ship->AddColumn("FromCityId", ColumnType::kInt64).ok());
  EXPECT_TRUE(ship->AddColumn("ToCityId", ColumnType::kInt64).ok());
  EXPECT_TRUE(ship->SetPrimaryKey(0).ok());
  // Lumber Seattle->Boston, Steel Boston->Austin, Grain Austin->Seattle.
  EXPECT_TRUE(ship->AppendRow({Value::Int(1), Value::Text("Lumber"),
                               Value::Int(1), Value::Int(2)})
                  .ok());
  EXPECT_TRUE(ship->AppendRow({Value::Int(2), Value::Text("Steel"),
                               Value::Int(2), Value::Int(3)})
                  .ok());
  EXPECT_TRUE(ship->AppendRow({Value::Int(3), Value::Text("Grain"),
                               Value::Int(3), Value::Int(1)})
                  .ok());

  EXPECT_TRUE(db.AddForeignKey("Shipment", "FromCityId", "City").ok());
  EXPECT_TRUE(db.AddForeignKey("Shipment", "ToCityId", "City").ok());
  EXPECT_TRUE(db.Finalize().ok());
  return db;
}

struct ShipWorld {
  Database db;
  std::unique_ptr<IndexSet> index;
  std::unique_ptr<SchemaGraph> graph;
};

const ShipWorld& World() {
  static const ShipWorld& world = *[] {
    auto* w = new ShipWorld;
    w->db = MakeShippingDb();
    auto index = IndexSet::Build(w->db);
    if (!index.ok()) abort();
    w->index = std::move(index).value();
    w->graph = std::make_unique<SchemaGraph>(w->db);
    return w;
  }();
  return world;
}

TEST(MultiEdgeTest, TwoLabeledEdges) {
  const SchemaGraph& g = *World().graph;
  ASSERT_EQ(g.NumEdges(), 2);
  EXPECT_EQ(g.edge(0).label, "FromCityId");
  EXPECT_EQ(g.edge(1).label, "ToCityId");
  EXPECT_EQ(g.edge(0).src, g.edge(1).src);
  EXPECT_EQ(g.edge(0).dst, g.edge(1).dst);
}

// "Lumber from/to Boston": the FromCityId query must score lower than
// the ToCityId query (Lumber went TO Boston).
TEST(MultiEdgeTest, EdgesAreDistinctQueries) {
  const ShipWorld& w = World();
  auto sheet = ExampleSpreadsheet::FromCells({{"Lumber", "Boston"}},
                                             w.index->tokenizer());
  ASSERT_TRUE(sheet.ok());
  ScoreContext ctx(*w.index, *sheet, ScoreParams{});
  EnumerationResult r = EnumerateCandidates(*w.graph, ctx);

  // Both two-relation variants are enumerated as distinct candidates.
  int two_rel = 0;
  for (const CandidateQuery& c : r.candidates) {
    if (c.query.tree().size() == 2) ++two_rel;
  }
  EXPECT_GE(two_rel, 2);

  Evaluator ev(ctx);
  double from_score = -1, to_score = -1;
  for (const CandidateQuery& c : r.candidates) {
    if (c.query.tree().size() != 2) continue;
    EvalCounters counters;
    std::vector<double> rows = ev.RowScores(c.query, nullptr, &counters);
    std::string sql = c.query.ToSql(w.db);
    if (sql.find("FromCityId") != std::string::npos) from_score = rows[0];
    if (sql.find("ToCityId") != std::string::npos) to_score = rows[0];
  }
  EXPECT_DOUBLE_EQ(to_score, 2.0);    // Lumber -> Boston matches fully
  EXPECT_DOUBLE_EQ(from_score, 1.0);  // Lumber from Seattle: only cargo
}

// Triangle query: "shipment from Seattle to Boston" uses BOTH edges in
// one tree (two City instances under one Shipment).
TEST(MultiEdgeTest, BothEdgesInOneTree) {
  const ShipWorld& w = World();
  auto sheet = ExampleSpreadsheet::FromCells(
      {{"Lumber", "Seattle", "Boston"}}, w.index->tokenizer());
  ASSERT_TRUE(sheet.ok());
  SearchOptions options;
  options.k = 5;
  SearchResult r = SearchFastTopK(*w.index, *w.graph, *sheet, options);
  ASSERT_FALSE(r.topk.empty());
  // Top result must contain the full example tuple: score_row = 3.
  EXPECT_DOUBLE_EQ(r.topk[0].row_score, 3.0);
  int city_instances = 0;
  for (const JoinTree::Node& n : r.topk[0].query.tree().nodes()) {
    if (n.table == w.db.FindTable("City")->id()) ++city_instances;
  }
  EXPECT_EQ(city_instances, 2);
}

// Brute-force cross-validation on all multi-edge candidates.
TEST(MultiEdgeTest, MatchesBruteForce) {
  const ShipWorld& w = World();
  auto sheet = ExampleSpreadsheet::FromCells(
      {{"Steel", "Austin", "Boston"}, {"Grain", "Seattle", ""}},
      w.index->tokenizer());
  ASSERT_TRUE(sheet.ok());
  ScoreContext ctx(*w.index, *sheet, ScoreParams{});
  EnumerationOptions opts;
  opts.max_tree_size = 4;
  EnumerationResult result = EnumerateCandidates(*w.graph, ctx, opts);
  ASSERT_GT(result.candidates.size(), 0u);
  testing::BruteForceEvaluator reference(*w.index, *sheet);
  Evaluator ev(ctx);
  for (const CandidateQuery& c : result.candidates) {
    EvalCounters counters;
    std::vector<double> got = ev.RowScores(c.query, nullptr, &counters);
    std::vector<double> want = reference.RowScores(c.query);
    for (size_t t = 0; t < got.size(); ++t) {
      EXPECT_DOUBLE_EQ(got[t], want[t]) << c.query.ToString(w.db);
    }
  }
}

}  // namespace
}  // namespace s4
