// Service-layer tests: the concurrent S4Service must be bit-identical
// to serial S4System::Search for every strategy (cross-query cache hits
// change work counts, never scores), honor deadlines and cancellation
// without corrupting shared state, reject on a full admission queue,
// order the queue by priority, and keep incremental sessions exact.
#include <future>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "service/s4_service.h"
#include "tests/test_util.h"

namespace s4 {
namespace {

using Cells = std::vector<std::vector<std::string>>;

const S4System& System() {
  static const S4System& system = *[] {
    auto s = S4System::Create(testing::TpchDb());
    if (!s.ok()) abort();
    return s->release();
  }();
  return system;
}

// A few Def-1-valid spreadsheets over the Figure-1 vocabulary.
std::vector<Cells> TestSheets() {
  return {
      {{"Rick", "USA", "Xbox"}, {"Julie", "", "iPhone"}, {"Kevin", "Canada", ""}},
      {{"Rick", "USA"}, {"Kevin", "Canada"}},
      {{"Julie", "iPhone"}, {"Rick", "Xbox"}},
      {{"Laptop", "USA"}, {"iPhone", "Canada"}},
  };
}

SearchOptions BaseOptions() {
  SearchOptions options;
  options.k = 5;
  // The default max_tree_size: the Figure-1 schema needs 5-relation
  // trees to cover all three example columns, and a starved enumeration
  // would make every assertion below vacuous.
  // Fixed thread count so the parallel block geometry (and thus tie
  // handling) is identical whether the run borrows the service pool or
  // builds its own.
  options.num_threads = 2;
  return options;
}

// Bit-identical, not near-equal: a shared-cache hit must serve the very
// table a private run would have built.
void ExpectBitIdentical(const SearchResult& ref, const SearchResult& got,
                        const std::string& label) {
  ASSERT_EQ(ref.topk.size(), got.topk.size()) << label;
  for (size_t i = 0; i < ref.topk.size(); ++i) {
    EXPECT_EQ(ref.topk[i].score, got.topk[i].score) << label << " rank " << i;
    EXPECT_EQ(ref.topk[i].query.signature(), got.topk[i].query.signature())
        << label << " rank " << i;
    EXPECT_EQ(ref.topk[i].row_score, got.topk[i].row_score)
        << label << " rank " << i;
    EXPECT_EQ(ref.topk[i].column_score, got.topk[i].column_score)
        << label << " rank " << i;
  }
}

TEST(ServiceDifferentialTest, ConcurrentMatchesSerialAllStrategies) {
  const std::vector<Cells> sheets = TestSheets();
  const std::vector<S4System::Strategy> strategies = {
      S4System::Strategy::kNaive, S4System::Strategy::kBaseline,
      S4System::Strategy::kFastTopK};
  const SearchOptions options = BaseOptions();

  // Serial references, no service involved.
  std::vector<std::vector<SearchResult>> refs(sheets.size());
  for (size_t s = 0; s < sheets.size(); ++s) {
    for (S4System::Strategy strategy : strategies) {
      auto ref = System().Search(sheets[s], options, strategy);
      ASSERT_TRUE(ref.ok()) << ref.status();
      refs[s].push_back(std::move(ref).value());
    }
  }

  ServiceOptions sopts;
  sopts.num_workers = 4;
  sopts.eval_threads = 4;
  sopts.max_queue = 1024;
  S4Service service(System(), sopts);

  // M client threads, each replaying every (sheet, strategy) combination
  // twice; round 2 runs against a warm cross-query cache. Results are
  // collected and compared on the main thread (gtest assertions are not
  // thread-safe).
  constexpr int kClients = 8;
  constexpr int kRounds = 2;
  const size_t per_client = sheets.size() * strategies.size() * kRounds;
  std::vector<std::vector<StatusOr<SearchResult>>> got(
      kClients, std::vector<StatusOr<SearchResult>>(
                    per_client, Status::Internal("unset")));
  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      size_t slot = 0;
      for (int round = 0; round < kRounds; ++round) {
        for (size_t s = 0; s < sheets.size(); ++s) {
          for (size_t st = 0; st < strategies.size(); ++st) {
            ServiceRequest req;
            // Stagger so different spreadsheets are in flight at once.
            const size_t sheet = (s + static_cast<size_t>(c)) % sheets.size();
            req.cells = sheets[sheet];
            req.options = options;
            req.strategy = strategies[st];
            got[c][slot++] = service.Search(std::move(req));
          }
        }
      }
    });
  }
  for (auto& t : clients) t.join();

  for (int c = 0; c < kClients; ++c) {
    size_t slot = 0;
    for (int round = 0; round < kRounds; ++round) {
      for (size_t s = 0; s < sheets.size(); ++s) {
        for (size_t st = 0; st < strategies.size(); ++st) {
          const size_t sheet = (s + static_cast<size_t>(c)) % sheets.size();
          const StatusOr<SearchResult>& r = got[c][slot++];
          ASSERT_TRUE(r.ok()) << r.status();
          ExpectBitIdentical(refs[sheet][st], *r,
                             "client=" + std::to_string(c) +
                                 " round=" + std::to_string(round) +
                                 " sheet=" + std::to_string(sheet) +
                                 " strategy=" + std::to_string(st));
        }
      }
    }
  }

  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.accepted, kClients * static_cast<int64_t>(per_client));
  EXPECT_EQ(stats.completed, stats.accepted);
  EXPECT_EQ(stats.failed, 0);
  // The workload repeats every spreadsheet many times, so the
  // cross-query cache must have served hits.
  EXPECT_GT(stats.shared_cache.hits, 0);
}

TEST(ServiceDeadlineTest, TinyDeadlineFailsWithoutCorruptingCache) {
  S4Service service(System());
  const SearchOptions options = BaseOptions();
  const Cells cells = TestSheets()[0];

  auto ref = System().Search(cells, options);
  ASSERT_TRUE(ref.ok());

  // Warm the shared cache, then let a doomed request run against it.
  {
    ServiceRequest req;
    req.cells = cells;
    req.options = options;
    auto warm = service.Search(std::move(req));
    ASSERT_TRUE(warm.ok()) << warm.status();
  }
  // Deterministic expiry, no wall-clock race: pause the service, admit
  // the doomed requests, pre-expire their tokens in place, then resume —
  // the worker's queued-expiry check fails each one with the typed
  // status before any search work starts.
  service.Pause();
  std::vector<S4Service::Ticket> doomed;
  for (int i = 0; i < 4; ++i) {
    ServiceRequest req;
    req.cells = cells;
    req.options = options;
    req.deadline_seconds = 1e-9;
    auto ticket = service.Submit(std::move(req));
    ASSERT_TRUE(ticket.ok()) << ticket.status();
    ticket->stop->SetDeadline(-1.0);  // provably expired while queued
    doomed.push_back(std::move(ticket).value());
  }
  service.Resume();
  for (auto& ticket : doomed) {
    auto r = ticket.result.get();
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.status().code(), StatusCode::kDeadlineExceeded)
        << r.status();
  }
  // A normal request afterwards still gets the exact answer.
  ServiceRequest req;
  req.cells = cells;
  req.options = options;
  auto after = service.Search(std::move(req));
  ASSERT_TRUE(after.ok()) << after.status();
  ExpectBitIdentical(*ref, *after, "after deadline misses");
  EXPECT_GE(service.stats().deadline_misses, 4);
}

TEST(ServiceDeadlineTest, SystemLevelDeadlineHonored) {
  // The S4System entry point honours a caller-armed token. Pre-expiring
  // it removes every clock race: the very first batch-boundary poll
  // observes the expired deadline, deterministically.
  StopToken stop;
  stop.SetDeadline(-1.0);
  SearchOptions options = BaseOptions();
  options.stop = &stop;
  for (S4System::Strategy strategy :
       {S4System::Strategy::kNaive, S4System::Strategy::kBaseline,
        S4System::Strategy::kFastTopK}) {
    auto r = System().Search(TestSheets()[0], options, strategy);
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.status().code(), StatusCode::kDeadlineExceeded) << r.status();
  }
  // The system-armed path (deadline without a token) maps the same way.
  SearchOptions timed = BaseOptions();
  timed.deadline_seconds = 1e-9;
  auto r = System().Search(TestSheets()[0], timed,
                           S4System::Strategy::kFastTopK);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kDeadlineExceeded) << r.status();
}

TEST(ServiceValidationTest, BadOptionsRejectedAtTheBoundary) {
  S4Service service(System());
  const Cells cells = TestSheets()[0];

  auto submit = [&](SearchOptions options, double deadline = 0.0) {
    ServiceRequest req;
    req.cells = cells;
    req.options = std::move(options);
    req.deadline_seconds = deadline;
    return service.Submit(std::move(req)).status();
  };

  SearchOptions bad_k = BaseOptions();
  bad_k.k = 0;
  EXPECT_EQ(submit(bad_k).code(), StatusCode::kInvalidArgument);
  bad_k.k = -3;
  EXPECT_EQ(submit(bad_k).code(), StatusCode::kInvalidArgument);

  SearchOptions bad_budget = BaseOptions();
  bad_budget.cache_budget_bytes = 0;
  EXPECT_EQ(submit(bad_budget).code(), StatusCode::kInvalidArgument);

  SearchOptions bad_eps = BaseOptions();
  bad_eps.epsilon = 0.0;
  EXPECT_EQ(submit(bad_eps).code(), StatusCode::kInvalidArgument);

  SearchOptions bad_deadline = BaseOptions();
  bad_deadline.deadline_seconds = -1.0;
  EXPECT_EQ(submit(bad_deadline).code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(submit(BaseOptions(), -0.5).code(),
            StatusCode::kInvalidArgument);

  SearchOptions bad_alpha = BaseOptions();
  bad_alpha.score.alpha = 1.5;
  EXPECT_EQ(submit(bad_alpha).code(), StatusCode::kInvalidArgument);

  // The same validation guards the plain system boundary.
  EXPECT_EQ(System().Search(cells, bad_k).status().code(),
            StatusCode::kInvalidArgument);

  // Nothing above was admitted.
  EXPECT_EQ(service.stats().accepted, 0);
}

TEST(ServiceBackpressureTest, FullQueueRejectsUntilDrained) {
  ServiceOptions sopts;
  sopts.num_workers = 1;
  sopts.max_queue = 2;
  S4Service service(System(), sopts);
  service.Pause();

  auto make_request = [] {
    ServiceRequest req;
    req.cells = TestSheets()[0];
    req.options = BaseOptions();
    return req;
  };

  auto a = service.Submit(make_request());
  auto b = service.Submit(make_request());
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  auto c = service.Submit(make_request());
  ASSERT_FALSE(c.ok());
  EXPECT_EQ(c.status().code(), StatusCode::kResourceExhausted);

  ServiceStats paused = service.stats();
  EXPECT_EQ(paused.accepted, 2);
  EXPECT_EQ(paused.rejected, 1);
  EXPECT_EQ(paused.queue_depth, 2u);

  service.Resume();
  auto ra = a->result.get();
  auto rb = b->result.get();
  EXPECT_TRUE(ra.ok()) << ra.status();
  EXPECT_TRUE(rb.ok()) << rb.status();
  EXPECT_EQ(service.stats().queue_depth, 0u);
}

TEST(ServiceCancellationTest, QueuedRequestCancelsCleanly) {
  ServiceOptions sopts;
  sopts.num_workers = 1;
  S4Service service(System(), sopts);
  service.Pause();

  ServiceRequest req;
  req.cells = TestSheets()[0];
  req.options = BaseOptions();
  auto ticket = service.Submit(std::move(req));
  ASSERT_TRUE(ticket.ok());
  ticket->stop->Cancel();
  service.Resume();

  auto r = ticket->result.get();
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kCancelled) << r.status();
  EXPECT_EQ(service.stats().cancelled, 1);

  // The service still serves.
  ServiceRequest again;
  again.cells = TestSheets()[0];
  again.options = BaseOptions();
  EXPECT_TRUE(service.Search(std::move(again)).ok());
}

TEST(ServicePriorityTest, HigherPriorityRunsFirst) {
  ServiceOptions sopts;
  sopts.num_workers = 1;  // strictly sequential execution
  S4Service service(System(), sopts);
  service.Pause();

  ServiceRequest low;
  low.cells = TestSheets()[0];
  low.options = BaseOptions();
  low.priority = 0;
  ServiceRequest high = low;
  high.priority = 5;

  auto low_ticket = service.Submit(std::move(low));
  auto high_ticket = service.Submit(std::move(high));
  ASSERT_TRUE(low_ticket.ok());
  ASSERT_TRUE(high_ticket.ok());
  service.Resume();

  // One worker pops by priority: when the low-priority result is ready,
  // the high-priority one (submitted later) must already be done.
  auto low_result = low_ticket->result.get();
  EXPECT_TRUE(low_result.ok()) << low_result.status();
  EXPECT_EQ(high_ticket->result.wait_for(std::chrono::seconds(0)),
            std::future_status::ready);
}

TEST(ServiceCacheTest, CrossQueryHitsAndInvalidation) {
  ServiceOptions sopts;
  sopts.num_workers = 1;
  S4Service service(System(), sopts);
  const Cells cells = TestSheets()[0];

  auto search = [&] {
    ServiceRequest req;
    req.cells = cells;
    req.options = BaseOptions();
    return service.Search(std::move(req));
  };

  auto first = search();
  ASSERT_TRUE(first.ok());
  const int64_t hits_after_first = service.stats().shared_cache.hits;
  auto second = search();
  ASSERT_TRUE(second.ok());
  ExpectBitIdentical(*first, *second, "repeat request");
  EXPECT_GT(service.stats().shared_cache.hits, hits_after_first);

  // Invalidation bumps the generation: the warm entries are unreachable,
  // yet the answer is unchanged.
  const uint64_t gen = service.stats().cache_generation;
  service.InvalidateSharedCache();
  EXPECT_EQ(service.stats().cache_generation, gen + 1);
  EXPECT_EQ(service.shared_cache().bytes_used(), 0u);
  auto third = search();
  ASSERT_TRUE(third.ok());
  ExpectBitIdentical(*first, *third, "post-invalidation request");
}

TEST(ServiceSessionTest, SessionsMatchFreshSearchesAndClose) {
  S4Service service(System());
  const SearchOptions options = BaseOptions();

  auto id = service.OpenSession(options);
  ASSERT_TRUE(id.ok()) << id.status();
  EXPECT_EQ(service.stats().sessions_open, 1);

  const Cells cells1 = {{"Rick", "USA"}, {"Kevin", "Canada"}};
  const Cells cells2 = {{"Rick", "USA"}, {"Kevin", "Mexico"}};
  for (const Cells& cells : {cells1, cells2}) {
    auto inc = service.SessionSearch(*id, cells);
    ASSERT_TRUE(inc.ok()) << inc.status();
    auto fresh = System().Search(cells, options);
    ASSERT_TRUE(fresh.ok());
    ASSERT_EQ(inc->topk.size(), fresh->topk.size());
    for (size_t i = 0; i < inc->topk.size(); ++i) {
      EXPECT_NEAR(inc->topk[i].score, fresh->topk[i].score, 1e-9)
          << "rank " << i;
    }
  }

  EXPECT_TRUE(service.CloseSession(*id).ok());
  EXPECT_EQ(service.stats().sessions_open, 0);
  EXPECT_EQ(service.SessionSearch(*id, cells1).status().code(),
            StatusCode::kNotFound);
  EXPECT_EQ(service.CloseSession(*id).code(), StatusCode::kNotFound);
  EXPECT_EQ(service.OpenSession(SearchOptions{.k = -1}).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(ServiceSessionTest, SessionDeadlineReportsMiss) {
  S4Service service(System());
  // A caller-armed session token is honoured across SessionSearch calls;
  // pre-expiring it makes the miss deterministic (no clock race).
  StopToken stop;
  stop.SetDeadline(-1.0);
  SearchOptions options = BaseOptions();
  options.stop = &stop;
  auto id = service.OpenSession(options);
  ASSERT_TRUE(id.ok());
  // NINC mode re-runs a full search, which polls the token at batch
  // boundaries.
  auto r = service.SessionSearch(*id, TestSheets()[0],
                                 IncrementalMode::kFastTopKNInc);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kDeadlineExceeded) << r.status();

  // Cancelling the same token maps to Cancelled on a later search.
  stop.Cancel();
  auto r2 = service.SessionSearch(*id, TestSheets()[0],
                                  IncrementalMode::kFastTopKNInc);
  ASSERT_FALSE(r2.ok());
  EXPECT_EQ(r2.status().code(), StatusCode::kCancelled) << r2.status();
}

TEST(ServiceShutdownTest, DestructorDrainsQueuedRequests) {
  std::future<StatusOr<SearchResult>> a, b;
  {
    ServiceOptions sopts;
    sopts.num_workers = 1;
    S4Service service(System(), sopts);
    service.Pause();
    ServiceRequest req;
    req.cells = TestSheets()[0];
    req.options = BaseOptions();
    auto ta = service.Submit(ServiceRequest(req));
    auto tb = service.Submit(std::move(req));
    ASSERT_TRUE(ta.ok());
    ASSERT_TRUE(tb.ok());
    a = std::move(ta->result);
    b = std::move(tb->result);
    // Destroyed while paused with two requests queued.
  }
  auto ra = a.get();
  auto rb = b.get();
  EXPECT_TRUE(ra.ok()) << ra.status();
  EXPECT_TRUE(rb.ok()) << rb.status();
}

// --- slow-query log ----------------------------------------------------

TEST(ServiceSlowLogTest, DisabledByDefaultAndEmptyJson) {
  S4Service service(System());
  EXPECT_FALSE(service.slow_log_enabled());
  ServiceRequest req;
  req.cells = TestSheets()[0];
  req.options = BaseOptions();
  ASSERT_TRUE(service.Search(std::move(req)).ok());
  EXPECT_TRUE(service.SlowLog().empty());
  EXPECT_EQ(service.SlowLogJson(), "{\"slow_log\":[]}");
}

TEST(ServiceSlowLogTest, CapturesCompletedRequestsWithProfile) {
  ServiceOptions sopts;
  sopts.slow_log_size = 8;
  sopts.slow_log_threshold_seconds = 0.0;  // everything qualifies
  S4Service service(System(), sopts);
  ASSERT_TRUE(service.slow_log_enabled());

  ServiceRequest req;
  req.cells = TestSheets()[0];
  req.options = BaseOptions();
  auto result = service.Search(ServiceRequest(req));
  ASSERT_TRUE(result.ok()) << result.status();
  // The service stamps the timing envelope on the returned profile.
  EXPECT_GT(result->profile.total_seconds, 0.0);
  EXPECT_GE(result->profile.total_seconds, result->profile.queue_seconds);

  const std::vector<SlowLogEntry> log = service.SlowLog();
  ASSERT_EQ(log.size(), 1u);
  EXPECT_GT(log[0].elapsed_seconds, 0.0);
  EXPECT_EQ(log[0].rows, 3);
  EXPECT_EQ(log[0].cols, 3);
  EXPECT_EQ(log[0].k, 5);
  EXPECT_EQ(log[0].strategy, "fasttopk");
  EXPECT_EQ(log[0].status, "OK");
  EXPECT_EQ(log[0].profile.candidates_evaluated,
            result->profile.candidates_evaluated);
  const std::string json = service.SlowLogJson();
  EXPECT_NE(json.find("\"elapsed_ms\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"profile\":{"), std::string::npos) << json;
}

TEST(ServiceSlowLogTest, ThresholdFiltersFastRequests) {
  ServiceOptions sopts;
  sopts.slow_log_size = 8;
  // No search over the tiny TPC-H fixture takes an hour: nothing may
  // ever be captured.
  sopts.slow_log_threshold_seconds = 3600.0;
  S4Service service(System(), sopts);
  for (int i = 0; i < 3; ++i) {
    ServiceRequest req;
    req.cells = TestSheets()[i % TestSheets().size()];
    req.options = BaseOptions();
    ASSERT_TRUE(service.Search(std::move(req)).ok());
  }
  EXPECT_TRUE(service.SlowLog().empty());
}

TEST(ServiceSlowLogTest, RingKeepsTheSlowestN) {
  ServiceOptions sopts;
  sopts.slow_log_size = 2;
  sopts.slow_log_threshold_seconds = 0.0;
  S4Service service(System(), sopts);
  // More completed requests than slots: the ring must end up holding
  // exactly slow_log_size entries, sorted slowest-first, every one with
  // a latency no smaller than any evicted one. Wall latencies are not
  // deterministic, so assert the invariant rather than which requests.
  for (int i = 0; i < 10; ++i) {
    ServiceRequest req;
    req.cells = TestSheets()[i % TestSheets().size()];
    req.options = BaseOptions();
    ASSERT_TRUE(service.Search(std::move(req)).ok());
  }
  const std::vector<SlowLogEntry> log = service.SlowLog();
  ASSERT_EQ(log.size(), 2u);
  EXPECT_GE(log[0].elapsed_seconds, log[1].elapsed_seconds);
  // Sequence numbers are unique and monotone in capture order.
  EXPECT_NE(log[0].seq, log[1].seq);
}

TEST(ServiceSlowLogTest, ConcurrentCaptureIsRaceFree) {
  ServiceOptions sopts;
  sopts.num_workers = 4;
  sopts.slow_log_size = 4;
  sopts.slow_log_threshold_seconds = 0.0;
  S4Service service(System(), sopts);
  // Hammer the completion path from many workers while readers snapshot
  // the ring; TSan (the CI service job) proves the locking.
  std::vector<std::future<StatusOr<SearchResult>>> futures;
  for (int i = 0; i < 24; ++i) {
    ServiceRequest req;
    req.cells = TestSheets()[i % TestSheets().size()];
    req.options = BaseOptions();
    auto ticket = service.Submit(std::move(req));
    ASSERT_TRUE(ticket.ok()) << ticket.status();
    futures.push_back(std::move(ticket->result));
  }
  std::thread reader([&service] {
    for (int i = 0; i < 50; ++i) {
      (void)service.SlowLog();
      (void)service.SlowLogJson();
    }
  });
  for (auto& f : futures) {
    auto r = f.get();
    // Backpressure rejections are impossible here (Submit succeeded);
    // every admitted request completes OK.
    EXPECT_TRUE(r.ok()) << r.status();
  }
  reader.join();
  const std::vector<SlowLogEntry> log = service.SlowLog();
  ASSERT_EQ(log.size(), 4u);
  for (size_t i = 1; i < log.size(); ++i) {
    EXPECT_GE(log[i - 1].elapsed_seconds, log[i].elapsed_seconds);
  }
}

}  // namespace
}  // namespace s4
