// Anytime approximate search suite (DESIGN.md "Anytime approximate
// search"): option validation at the system boundary, the JoinSampler
// estimator contract (exhaustive walks reproduce exact scores; partial
// walks cover the true score at no less than the stated confidence),
// the epsilon = 0 bit-identity guarantee across strategies, thread
// counts and shard slicings, determinism of the sampled path, epsilon
// soundness of the relaxed skipping rule, and the deadline fallback
// that turns a truncated result into a bounded-error approximate one.
#include <cmath>
#include <cstdint>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "approx/join_sampler.h"
#include "common/rng.h"
#include "common/string_util.h"
#include "datagen/random_schema.h"
#include "exec/evaluator.h"
#include "s4/s4.h"
#include "score/score_model.h"
#include "strategy/strategy.h"
#include "tests/test_util.h"

namespace s4 {
namespace {

constexpr double kTol = 1e-9;

// Exact final score of one candidate, recomputed from first principles
// through the hash-join evaluator (no cache, no pruning).
double ExactScore(const ScoreContext& ctx, const SearchOptions& options,
                  const CandidateQuery& cand,
                  std::vector<double>* row_scores_out = nullptr) {
  Evaluator ev(ctx);
  EvalCounters counters;
  std::vector<double> rows = ev.RowScores(cand.query, nullptr, &counters);
  double row_score = 0.0;
  for (double s : rows) row_score += s;
  if (row_scores_out != nullptr) *row_scores_out = rows;
  return CombineScore(row_score, cand.column_score, options.score.alpha,
                      cand.query.tree().size());
}

// Random 2x2 spreadsheet over the generator's shared vocabulary, the
// differential-suite recipe.
std::vector<std::vector<std::string>> RandomCells(Rng& rng,
                                                  int32_t vocab_size) {
  std::vector<std::vector<std::string>> cells(2);
  for (auto& row : cells) {
    for (int c = 0; c < 2; ++c) {
      std::string cell = StrFormat(
          "w%lld", static_cast<long long>(rng.Uniform(vocab_size)));
      if (rng.Bernoulli(0.4)) {
        cell += StrFormat(
            " w%lld", static_cast<long long>(rng.Uniform(vocab_size)));
      }
      row.push_back(cell);
    }
  }
  return cells;
}

// --- option validation -------------------------------------------------

TEST(ApproxOptionsTest, ValidateRejectsBadApproxKnobs) {
  SearchOptions ok;
  EXPECT_TRUE(ValidateSearchOptions(ok).ok());

  SearchOptions on = ok;
  on.approx_epsilon = 0.05;
  EXPECT_TRUE(ValidateSearchOptions(on).ok());
  on.approx_confidence = 1.0;
  on.sample_budget = 1;
  EXPECT_TRUE(ValidateSearchOptions(on).ok());

  SearchOptions bad = ok;
  bad.approx_epsilon = -0.01;
  EXPECT_EQ(ValidateSearchOptions(bad).code(), StatusCode::kInvalidArgument);

  bad = ok;
  bad.approx_confidence = 0.0;
  EXPECT_EQ(ValidateSearchOptions(bad).code(), StatusCode::kInvalidArgument);
  bad.approx_confidence = 1.5;
  EXPECT_EQ(ValidateSearchOptions(bad).code(), StatusCode::kInvalidArgument);
  bad.approx_confidence = std::nan("");
  EXPECT_EQ(ValidateSearchOptions(bad).code(), StatusCode::kInvalidArgument);

  bad = ok;
  bad.sample_budget = 0;
  EXPECT_EQ(ValidateSearchOptions(bad).code(), StatusCode::kInvalidArgument);
  bad.sample_budget = -7;
  EXPECT_EQ(ValidateSearchOptions(bad).code(), StatusCode::kInvalidArgument);

  // The sampler mirrors keep-zero-rows join semantics; the drop-zero
  // ablation would make its certain lower bounds unsound.
  bad = ok;
  bad.approx_epsilon = 0.1;
  bad.drop_zero_rows = true;
  EXPECT_EQ(ValidateSearchOptions(bad).code(), StatusCode::kInvalidArgument);
  bad.approx_epsilon = 0.0;
  EXPECT_TRUE(ValidateSearchOptions(bad).ok());
}

// --- JoinSampler estimator contract ------------------------------------

// confidence = 1 forces an exhaustive walk of every support: the
// estimate must be flagged exact and agree with the evaluator up to
// floating-point accumulation order, including the per-ES-row scores
// reusable as session records.
TEST(JoinSamplerTest, ExhaustiveWalkReproducesExactScores) {
  const IndexSet& index = testing::TpchIndex();
  ExampleSpreadsheet sheet = testing::Fig2aSheet(index);
  SearchOptions options;
  PreparedSearch prep(index, testing::TpchGraph(), sheet, options);
  ASSERT_GT(prep.candidates.size(), 0u);

  approx::ApproxParams params;
  params.epsilon = 0.05;
  params.confidence = 1.0;
  params.sample_budget = int64_t{1} << 20;
  params.rng_seed = 42;
  approx::JoinSampler sampler(prep.ctx, params);

  for (const CandidateQuery& cand : prep.candidates) {
    SCOPED_TRACE(cand.query.signature());
    approx::CandidateEstimate est = sampler.Estimate(cand, false, nullptr);
    ASSERT_FALSE(est.escalate);
    EXPECT_TRUE(est.interval.exact());
    EXPECT_EQ(est.interval.sampled, est.interval.support);

    std::vector<double> exact_rows;
    const double exact = ExactScore(prep.ctx, options, cand, &exact_rows);
    EXPECT_NEAR(est.interval.lo, exact, kTol);
    EXPECT_NEAR(est.interval.hi, exact, kTol);
    EXPECT_LE(est.interval.lo, cand.upper_bound + kTol);

    ASSERT_EQ(est.row_scores.size(), exact_rows.size());
    for (size_t t = 0; t < exact_rows.size(); ++t) {
      EXPECT_NEAR(est.row_scores[t], exact_rows[t], kTol) << "row " << t;
    }
  }
}

// Statistical contract of a partial walk: a resolved interval [lo, lo]
// at confidence c pins the true score with probability >= c. Aggregated
// over 24 (schema, sampler-seed) combinations, the empirical coverage
// of genuinely partial resolutions (sampled < support) must not fall
// below the stated confidence. A vacuity guard keeps the assertion
// honest: the workload must actually produce partial resolutions.
TEST(JoinSamplerTest, PartialWalkCoversTrueScoreAtStatedConfidence) {
  const double kConfidence = 0.7;
  int64_t trials = 0;
  int64_t covered = 0;

  for (uint64_t schema_seed : {11, 12, 13, 14}) {
    datagen::RandomSchemaOptions sopts;
    sopts.seed = schema_seed;
    sopts.num_tables = 4;
    sopts.min_rows = 10;   // no empty tables: supports must be sizable
    sopts.max_rows = 60;
    sopts.vocab_size = 10;  // dense term collisions
    auto db = datagen::MakeRandomSchema(sopts);
    ASSERT_TRUE(db.ok()) << db.status();
    auto index = IndexSet::Build(*db);
    ASSERT_TRUE(index.ok());
    SchemaGraph graph(*db);

    Rng rng(schema_seed * 977 + 5);
    auto sheet = ExampleSpreadsheet::FromCells(
        RandomCells(rng, sopts.vocab_size), (*index)->tokenizer());
    ASSERT_TRUE(sheet.ok());

    SearchOptions base;
    base.k = 5;
    base.enumeration.max_tree_size = 3;
    base.enumeration.max_queries = 600;
    PreparedSearch prep(**index, graph, *sheet, base);

    // Exact reference, computed lazily once per candidate.
    std::vector<double> exact(prep.candidates.size(), -1.0);

    for (uint64_t s = 0; s < 6; ++s) {
      approx::ApproxParams params;
      params.confidence = kConfidence;
      params.sample_budget = int64_t{1} << 20;  // budget never caps
      params.rng_seed = 0x9E3779B97F4A7C15ull * (s + 1) + schema_seed;
      approx::JoinSampler sampler(prep.ctx, params);

      for (size_t ci = 0; ci < prep.candidates.size(); ++ci) {
        approx::CandidateEstimate est =
            sampler.Estimate(prep.candidates[ci], false, nullptr);
        if (est.escalate || !est.interval.resolved()) continue;
        if (est.interval.sampled >= est.interval.support) continue;
        ASSERT_LT(est.interval.confidence, 1.0);
        ++trials;
        if (exact[ci] < 0.0) {
          exact[ci] = ExactScore(prep.ctx, base, prep.candidates[ci]);
        }
        // lo is a certain lower bound; "covered" means the resolved
        // interval actually pinned the score.
        EXPECT_LE(est.interval.lo, exact[ci] + kTol);
        if (est.interval.lo >= exact[ci] - kTol) ++covered;
      }
    }
  }

  ASSERT_GE(trials, 50) << "workload produced too few partial resolutions"
                           " for the coverage assertion to mean anything";
  EXPECT_GE(static_cast<double>(covered) / static_cast<double>(trials),
            kConfidence)
      << covered << "/" << trials << " partial intervals covered the"
      << " true score";
}

// --- epsilon = 0 bit-identity ------------------------------------------

// Merges per-slice top-k lists the way the coordinator does: global
// order by (score desc, signature asc), prefix k.
std::vector<ScoredQuery> MergeSlices(
    const std::vector<SearchResult>& slices, int32_t k) {
  std::vector<ScoredQuery> all;
  for (const SearchResult& r : slices) {
    all.insert(all.end(), r.topk.begin(), r.topk.end());
  }
  std::sort(all.begin(), all.end(),
            [](const ScoredQuery& a, const ScoredQuery& b) {
              if (a.score != b.score) return a.score > b.score;
              return a.query.signature() < b.query.signature();
            });
  if (all.size() > static_cast<size_t>(k)) all.resize(k);
  return all;
}

void ExpectBitIdenticalTopK(const std::vector<ScoredQuery>& ref,
                            const std::vector<ScoredQuery>& got,
                            const std::string& label) {
  ASSERT_EQ(ref.size(), got.size()) << label;
  for (size_t i = 0; i < ref.size(); ++i) {
    // Exact double equality on purpose: epsilon = 0 must leave the
    // computation untouched, not merely close.
    EXPECT_EQ(ref[i].score, got[i].score) << label << " rank " << i;
    EXPECT_EQ(ref[i].query.signature(), got[i].query.signature())
        << label << " rank " << i;
    EXPECT_FALSE(got[i].approximate) << label << " rank " << i;
    EXPECT_TRUE(got[i].interval.exact()) << label << " rank " << i;
  }
}

class ApproxZeroEpsilonTest : public ::testing::TestWithParam<uint64_t> {};

// approx_epsilon = 0 disables the machinery entirely: runs with the
// other approx knobs set to aggressive values must be bit-identical to
// runs with defaults, for every strategy, thread count and shard
// slicing, and the merged sharded answer must be bit-identical too.
TEST_P(ApproxZeroEpsilonTest, BitIdenticalAcrossStrategiesThreadsShards) {
  const uint64_t seed = GetParam();
  datagen::RandomSchemaOptions sopts;
  sopts.seed = seed;
  sopts.num_tables = 4 + static_cast<int32_t>(seed % 3);
  auto db = datagen::MakeRandomSchema(sopts);
  ASSERT_TRUE(db.ok()) << db.status();
  auto index = IndexSet::Build(*db);
  ASSERT_TRUE(index.ok());
  SchemaGraph graph(*db);

  Rng rng(seed * 131 + 7);
  auto sheet = ExampleSpreadsheet::FromCells(RandomCells(rng, 25),
                                             (*index)->tokenizer());
  ASSERT_TRUE(sheet.ok());

  SearchOptions base;
  base.k = 5;
  base.enumeration.max_tree_size = 3;
  base.enumeration.max_queries = 4000;

  using Runner = SearchResult (*)(PreparedSearch&, const SearchOptions&);
  const std::pair<const char*, Runner> strategies[] = {
      {"naive", &RunNaive},
      {"baseline", &RunBaseline},
      {"fasttopk", &RunFastTopK},
  };

  for (int32_t shard_count : {1, 2, 4}) {
    for (int32_t threads : {1, 4}) {
      for (const auto& [name, run] : strategies) {
        const std::string label =
            StrFormat("%s seed=%llu S=%d T=%d", name,
                      static_cast<unsigned long long>(seed), shard_count,
                      threads);
        std::vector<SearchResult> plain_slices;
        std::vector<SearchResult> knob_slices;
        for (int32_t shard = 0; shard < shard_count; ++shard) {
          SearchOptions plain = base;
          plain.num_threads = threads;
          plain.shard_count = shard_count;
          plain.shard_index = shard;
          // Same run with epsilon pinned to 0 but every other approx
          // knob set to values that would wreck the answer if read.
          SearchOptions knobs = plain;
          knobs.approx_epsilon = 0.0;
          knobs.approx_confidence = 0.31;
          knobs.sample_budget = 3;
          knobs.rng_seed = 0xDEADBEEFull;

          PreparedSearch prep(**index, graph, *sheet, plain);
          plain_slices.push_back(run(prep, plain));
          knob_slices.push_back(run(prep, knobs));

          EXPECT_FALSE(knob_slices.back().approximate) << label;
          EXPECT_EQ(knob_slices.back().stats.approx_sampled, 0) << label;
          EXPECT_EQ(knob_slices.back().stats.approx_skipped, 0) << label;
          ExpectBitIdenticalTopK(plain_slices.back().topk,
                                 knob_slices.back().topk,
                                 label + " slice " + std::to_string(shard));
        }
        ExpectBitIdenticalTopK(MergeSlices(plain_slices, base.k),
                               MergeSlices(knob_slices, base.k),
                               label + " merged");
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ApproxZeroEpsilonTest,
                         ::testing::Range<uint64_t>(1, 5));

// --- sampled-path determinism and soundness ----------------------------

void ExpectIdenticalApproxResults(const SearchResult& a,
                                  const SearchResult& b,
                                  const std::string& label) {
  ASSERT_EQ(a.topk.size(), b.topk.size()) << label;
  for (size_t i = 0; i < a.topk.size(); ++i) {
    EXPECT_EQ(a.topk[i].score, b.topk[i].score) << label << " rank " << i;
    EXPECT_EQ(a.topk[i].query.signature(), b.topk[i].query.signature())
        << label << " rank " << i;
    EXPECT_EQ(a.topk[i].approximate, b.topk[i].approximate)
        << label << " rank " << i;
    EXPECT_EQ(a.topk[i].interval.lo, b.topk[i].interval.lo)
        << label << " rank " << i;
    EXPECT_EQ(a.topk[i].interval.hi, b.topk[i].interval.hi)
        << label << " rank " << i;
    EXPECT_EQ(a.topk[i].interval.confidence, b.topk[i].interval.confidence)
        << label << " rank " << i;
    EXPECT_EQ(a.topk[i].interval.support, b.topk[i].interval.support)
        << label << " rank " << i;
    EXPECT_EQ(a.topk[i].interval.sampled, b.topk[i].interval.sampled)
        << label << " rank " << i;
  }
  EXPECT_EQ(a.approximate, b.approximate) << label;
}

// The per-candidate rng streams are keyed by signature, and sampling
// decisions are applied serially in candidate order against a frozen
// bound, so an approximate run is reproducible at any thread count.
TEST(ApproxFastTopKTest, SampledRunIsDeterministicAcrossThreadCounts) {
  for (uint64_t seed : {3, 17, 29}) {
    datagen::RandomSchemaOptions sopts;
    sopts.seed = seed;
    sopts.num_tables = 5;
    sopts.min_rows = 5;
    sopts.max_rows = 40;
    sopts.vocab_size = 12;
    auto db = datagen::MakeRandomSchema(sopts);
    ASSERT_TRUE(db.ok()) << db.status();
    auto index = IndexSet::Build(*db);
    ASSERT_TRUE(index.ok());
    SchemaGraph graph(*db);

    Rng rng(seed * 53 + 1);
    auto sheet = ExampleSpreadsheet::FromCells(
        RandomCells(rng, sopts.vocab_size), (*index)->tokenizer());
    ASSERT_TRUE(sheet.ok());

    SearchOptions options;
    options.k = 5;
    options.enumeration.max_tree_size = 3;
    options.enumeration.max_queries = 2000;
    options.approx_epsilon = 0.3;
    options.approx_confidence = 0.9;
    options.sample_budget = 64;  // small: force a sampling/escalation mix

    PreparedSearch prep(**index, graph, *sheet, options);
    SearchOptions serial = options;
    serial.num_threads = 1;
    SearchOptions pooled = options;
    pooled.num_threads = 4;
    SearchResult a = RunFastTopK(prep, serial);
    SearchResult b = RunFastTopK(prep, pooled);
    ExpectIdenticalApproxResults(
        a, b, "seed=" + std::to_string(seed) + " T1-vs-T4");
  }
}

// Epsilon soundness at confidence 1 (every resolved interval is exact,
// escalations fall back to exact evaluation): each returned entry's
// score must be its true score, and the approximate k-th score can
// trail the exact k-th by at most the relative slack.
TEST(ApproxFastTopKTest, RelaxedRunIsEpsilonSound) {
  const double kEpsilon = 0.25;
  for (uint64_t seed : {7, 19}) {
    datagen::RandomSchemaOptions sopts;
    sopts.seed = seed;
    sopts.num_tables = 5;
    sopts.min_rows = 5;
    sopts.max_rows = 40;
    sopts.vocab_size = 12;
    auto db = datagen::MakeRandomSchema(sopts);
    ASSERT_TRUE(db.ok()) << db.status();
    auto index = IndexSet::Build(*db);
    ASSERT_TRUE(index.ok());
    SchemaGraph graph(*db);

    Rng rng(seed * 53 + 2);
    auto sheet = ExampleSpreadsheet::FromCells(
        RandomCells(rng, sopts.vocab_size), (*index)->tokenizer());
    ASSERT_TRUE(sheet.ok());

    SearchOptions exact_opts;
    exact_opts.k = 5;
    exact_opts.enumeration.max_tree_size = 3;
    exact_opts.enumeration.max_queries = 2000;
    exact_opts.num_threads = 1;

    SearchOptions approx_opts = exact_opts;
    approx_opts.approx_epsilon = kEpsilon;
    approx_opts.approx_confidence = 1.0;
    approx_opts.sample_budget = 48;

    PreparedSearch prep(**index, graph, *sheet, exact_opts);
    SearchResult exact = RunFastTopK(prep, exact_opts);
    SearchResult approx = RunFastTopK(prep, approx_opts);
    ASSERT_EQ(exact.topk.size(), approx.topk.size());
    if (exact.topk.empty()) continue;

    const std::string label = "seed=" + std::to_string(seed);
    for (const ScoredQuery& sq : approx.topk) {
      // Find the candidate to recompute its true score.
      const CandidateQuery* cand = nullptr;
      for (const CandidateQuery& c : prep.candidates) {
        if (c.query.signature() == sq.query.signature()) {
          cand = &c;
          break;
        }
      }
      ASSERT_NE(cand, nullptr) << label;
      const double truth = ExactScore(prep.ctx, approx_opts, *cand);
      EXPECT_NEAR(sq.score, truth, kTol) << label;
      EXPECT_GE(truth, sq.interval.lo - kTol) << label;
      EXPECT_LE(truth, sq.interval.hi + kTol) << label;
    }
    const double exact_kth = exact.topk.back().score;
    const double approx_kth = approx.topk.back().score;
    EXPECT_GE(approx_kth * (1.0 + kEpsilon), exact_kth - kTol) << label;
  }
}

// --- deadline fallback --------------------------------------------------

// An already-expired deadline: the exact path truncates (the StatusOr
// entry point maps that to DeadlineExceeded), while the approximate
// path finishes every candidate in best-effort sampling mode and
// returns a complete bounded-error answer flagged approximate.
TEST(ApproxDeadlineTest, FallbackTurnsTruncationIntoApproximation) {
  datagen::RandomSchemaOptions sopts;
  sopts.seed = 23;
  sopts.num_tables = 6;
  sopts.min_rows = 10;
  sopts.max_rows = 60;
  sopts.vocab_size = 12;
  auto db = datagen::MakeRandomSchema(sopts);
  ASSERT_TRUE(db.ok()) << db.status();
  auto system = S4System::Create(*db);
  ASSERT_TRUE(system.ok());

  Rng rng(404);
  const std::vector<std::vector<std::string>> cells =
      RandomCells(rng, sopts.vocab_size);

  SearchOptions options;
  options.k = 5;
  options.enumeration.max_tree_size = 3;
  options.enumeration.max_queries = 2000;
  options.num_threads = 1;
  options.deadline_seconds = 1e-9;  // expired before the first poll

  auto truncated = (*system)->Search(cells, options);
  ASSERT_FALSE(truncated.ok());
  EXPECT_EQ(truncated.status().code(), StatusCode::kDeadlineExceeded);

  SearchOptions fallback = options;
  fallback.approx_epsilon = 0.1;
  fallback.sample_budget = 32;
  auto approx = (*system)->Search(cells, fallback);
  ASSERT_TRUE(approx.ok()) << approx.status();
  EXPECT_FALSE(approx->interrupted);
  EXPECT_TRUE(approx->approximate);
  EXPECT_GT(approx->stats.approx_sampled, 0);
  EXPECT_FALSE(approx->topk.empty());
}

}  // namespace
}  // namespace s4
