// Materialized query outputs (the Fig 2(b) view): projection contents,
// best-match tracking, truncation, and agreement with the evaluator.
#include <gtest/gtest.h>

#include "enumerate/enumerator.h"
#include "exec/evaluator.h"
#include "exec/query_output.h"
#include "tests/test_util.h"

namespace s4 {
namespace {

using testing::Fig2aSheet;
using testing::TpchDb;
using testing::TpchGraph;
using testing::TpchIndex;

class QueryOutputTest : public ::testing::Test {
 protected:
  QueryOutputTest()
      : sheet_(Fig2aSheet(TpchIndex())),
        ctx_(TpchIndex(), sheet_, ScoreParams{}),
        result_(EnumerateCandidates(TpchGraph(), ctx_)) {}

  const PJQuery* FindQueryI() {
    for (const CandidateQuery& c : result_.candidates) {
      if (c.query.tree().size() != 5) continue;
      std::string s = c.query.ToString(TpchDb());
      if (s.find("A->Customer.CustName") != std::string::npos &&
          s.find("LineItem") != std::string::npos) {
        return &c.query;
      }
    }
    return nullptr;
  }

  ExampleSpreadsheet sheet_;
  ScoreContext ctx_;
  EnumerationResult result_;
};

// Figure 2(b)-(i): the output contains "Rick Miller | USA | Xbox One"
// and friends; each example tuple's best row carries score(t|Q).
TEST_F(QueryOutputTest, Fig2bOutputRows) {
  const PJQuery* q = FindQueryI();
  ASSERT_NE(q, nullptr);
  auto out = ExecuteQuery(*q, ctx_);
  ASSERT_TRUE(out.ok());
  EXPECT_FALSE(out->truncated);
  // Fig 2(b)-(i) lists 4 output rows.
  EXPECT_EQ(out->rows.size(), 4u);

  bool found_rick_xbox = false;
  for (const OutputRow& row : out->rows) {
    std::string joined;
    for (const std::string& c : row.cells) joined += c + "|";
    if (joined == "Rick Miller|USA|Xbox One|") found_rick_xbox = true;
  }
  EXPECT_TRUE(found_rick_xbox);

  // Best rows exist for all three example tuples and their similarities
  // match the evaluator's row scores (3, 2, 2 per the score test).
  Evaluator ev(ctx_);
  EvalCounters counters;
  std::vector<double> scores = ev.RowScores(*q, nullptr, &counters);
  ASSERT_EQ(out->best_row.size(), 3u);
  for (size_t t = 0; t < 3; ++t) {
    ASSERT_GE(out->best_row[t], 0) << "tuple " << t;
    EXPECT_DOUBLE_EQ(
        out->rows[out->best_row[t]].similarity[t], scores[t]);
  }
}

// Best-match similarity equals score(t|Q) for every candidate when the
// join is fully explored.
TEST_F(QueryOutputTest, BestRowsMatchEvaluatorEverywhere) {
  Evaluator ev(ctx_);
  for (const CandidateQuery& c : result_.candidates) {
    auto out = ExecuteQuery(c.query, ctx_);
    ASSERT_TRUE(out.ok());
    if (out->truncated) continue;
    EvalCounters counters;
    std::vector<double> scores = ev.RowScores(c.query, nullptr, &counters);
    for (size_t t = 0; t < scores.size(); ++t) {
      const double got = out->best_row[t] < 0
                             ? 0.0
                             : out->rows[out->best_row[t]].similarity[t];
      EXPECT_DOUBLE_EQ(got, scores[t]) << c.query.ToString(TpchDb());
    }
  }
}

TEST_F(QueryOutputTest, MaxRowsTruncates) {
  const PJQuery* q = FindQueryI();
  ASSERT_NE(q, nullptr);
  OutputOptions opts;
  opts.max_rows = 2;
  auto out = ExecuteQuery(*q, ctx_, opts);
  ASSERT_TRUE(out.ok());
  // 2 listing rows plus possibly retained best-match rows.
  EXPECT_LE(out->rows.size(), 4u);
  EXPECT_TRUE(out->truncated);
}

TEST_F(QueryOutputTest, OnlyMatchingFilter) {
  const PJQuery* q = FindQueryI();
  ASSERT_NE(q, nullptr);
  OutputOptions opts;
  opts.only_matching = true;
  auto out = ExecuteQuery(*q, ctx_, opts);
  ASSERT_TRUE(out.ok());
  for (const OutputRow& row : out->rows) {
    double total = 0.0;
    for (double s : row.similarity) total += s;
    EXPECT_GT(total, 0.0);
  }
}

TEST_F(QueryOutputTest, ToStringMarksBestRows) {
  const PJQuery* q = FindQueryI();
  ASSERT_NE(q, nullptr);
  auto out = ExecuteQuery(*q, ctx_);
  ASSERT_TRUE(out.ok());
  std::string s = out->ToString();
  EXPECT_NE(s.find("A:Customer.CustName"), std::string::npos);
  EXPECT_NE(s.find("t0(3)"), std::string::npos);
  EXPECT_NE(s.find("Rick Miller"), std::string::npos);
}

TEST_F(QueryOutputTest, RejectsEmptyProjection) {
  PJQuery empty;
  EXPECT_FALSE(ExecuteQuery(empty, ctx_).ok());
}

}  // namespace
}  // namespace s4
