// Live mutation subsystem suite. The central claim (DESIGN.md "Live
// mutations") is rebuild equivalence: after ANY sequence of Apply
// calls, searching the published epoch returns bit-identical results —
// signatures, score bits, upper bounds — to an S4System built from
// scratch over a database in the same state, for every strategy, thread
// count, and candidate-space shard slice. Around that differential
// core: epoch pinning (old epochs stay searchable and bit-stable),
// batch-as-a-sequence semantics (applied prefix publishes, first
// failure stops), per-relation cache invalidation (a mutation leaves an
// unrelated relation's cached sub-PJs hitting; InvalidateSharedCache
// still clears everything), the N-writers/M-searchers interleaving
// suite (run under the tsan preset), and the wire + scatter-gather
// write paths end to end.
#include <cstdint>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <unordered_set>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "common/stop_token.h"
#include "common/string_util.h"
#include "datagen/random_schema.h"
#include "datagen/tpch_mini.h"
#include "dist/coordinator.h"
#include "live/live_s4.h"
#include "live/mutation.h"
#include "net/client.h"
#include "net/server.h"
#include "net/wire.h"
#include "s4/s4.h"
#include "service/s4_service.h"
#include "storage/database.h"
#include "strategy/strategy.h"

namespace s4 {
namespace {

using Cells = std::vector<std::vector<std::string>>;

const std::vector<S4System::Strategy> kStrategies = {
    S4System::Strategy::kNaive, S4System::Strategy::kBaseline,
    S4System::Strategy::kFastTopK};

// Strict bit-identity: signatures and raw score/bound values at every
// rank. Exact double == is deliberate — "equivalent up to tolerance"
// would hide an incremental index that drifts from the rebuilt one.
void ExpectBitIdentical(const SearchResult& ref, const SearchResult& got,
                        const std::string& label) {
  ASSERT_EQ(ref.topk.size(), got.topk.size()) << label;
  for (size_t i = 0; i < ref.topk.size(); ++i) {
    EXPECT_EQ(ref.topk[i].query.signature(), got.topk[i].query.signature())
        << label << " rank " << i;
    EXPECT_EQ(ref.topk[i].score, got.topk[i].score) << label << " rank " << i;
    EXPECT_EQ(ref.topk[i].upper_bound, got.topk[i].upper_bound)
        << label << " rank " << i;
  }
}

// One comparable fingerprint of a top-k list (signature + score bits per
// rank); set membership of these keys is how the concurrent suite maps
// each observed search back to an epoch-consistent rebuild.
std::string ResultKey(const SearchResult& r) {
  std::string key;
  for (const ScoredQuery& q : r.topk) {
    uint64_t bits = 0;
    static_assert(sizeof(bits) == sizeof(q.score));
    std::memcpy(&bits, &q.score, sizeof(bits));
    key += q.query.signature();
    key += StrFormat("@%016llx;", static_cast<unsigned long long>(bits));
  }
  return key;
}

std::string RandomWords(Rng& rng, int32_t vocab) {
  std::string text = StrFormat(
      "w%lld", static_cast<long long>(rng.Uniform(vocab)));
  if (rng.Bernoulli(0.4)) {
    text += StrFormat(" w%lld",
                      static_cast<long long>(rng.Uniform(vocab)));
  }
  return text;
}

// The differential_test spreadsheet idiom: random cells over the
// generator's shared vocabulary.
Cells RandomCells(Rng& rng, int32_t vocab) {
  Cells cells(2);
  for (auto& row : cells) {
    for (int c = 0; c < 2; ++c) row.push_back(RandomWords(rng, vocab));
  }
  return cells;
}

// One mutation valid against the database's current state (tables here
// all keep the primary key in column 0 — the random-schema and
// hand-built layouts). Within a batch, ops generated against the same
// snapshot may still collide (two deletes of one row); Apply then keeps
// the applied prefix, which is exactly the semantics under test.
Mutation RandomOp(Rng& rng, const Database& db, int64_t* next_pk,
                  int32_t vocab) {
  const TableId tid = static_cast<TableId>(rng.Uniform(db.NumTables()));
  const Table& t = db.table(tid);
  const uint64_t choice = rng.Uniform(3);
  if (choice == 0 || t.NumRows() == 0) {
    std::vector<Value> values;
    for (int32_t c = 0; c < t.NumColumns(); ++c) {
      if (c == t.primary_key_column()) {
        values.push_back(Value::Int((*next_pk)++));
      } else if (t.column(c).type == ColumnType::kText) {
        values.push_back(Value::Text(RandomWords(rng, vocab)));
      } else {
        values.push_back(rng.Bernoulli(0.25)
                             ? Value::Null()
                             : Value::Int(1 + static_cast<int64_t>(
                                                  rng.Uniform(12))));
      }
    }
    return Mutation::Insert(t.name(), std::move(values));
  }
  const int64_t row = static_cast<int64_t>(rng.Uniform(t.NumRows()));
  const int64_t pk = t.GetInt(row, t.primary_key_column());
  if (choice == 1) return Mutation::Delete(t.name(), pk);
  int32_t col = t.primary_key_column();
  while (col == t.primary_key_column()) {
    col = static_cast<int32_t>(rng.Uniform(t.NumColumns()));
  }
  Value v = t.column(col).type == ColumnType::kText
                ? Value::Text(RandomWords(rng, vocab))
                : (rng.Bernoulli(0.25)
                       ? Value::Null()
                       : Value::Int(1 + static_cast<int64_t>(
                                            rng.Uniform(12))));
  return Mutation::Update(t.name(), pk, t.column(col).name, std::move(v));
}

SearchOptions SmallOptions() {
  SearchOptions options;
  options.k = 5;
  options.enumeration.max_tree_size = 3;
  options.enumeration.max_queries = 2000;
  options.num_threads = 1;
  return options;
}

// Hand-built people/countries database: full control over names for
// the unit and wire tests.
Database MakeTinyDb() {
  Database db;
  Table* country = db.AddTable("Country").value();
  (void)country->AddColumn("Id", ColumnType::kInt64);
  (void)country->AddColumn("Name", ColumnType::kText);
  (void)country->SetPrimaryKey(0);
  (void)country->AppendRow({Value::Int(1), Value::Text("USA")});
  (void)country->AppendRow({Value::Int(2), Value::Text("Canada")});
  Table* person = db.AddTable("Person").value();
  (void)person->AddColumn("Id", ColumnType::kInt64);
  (void)person->AddColumn("Name", ColumnType::kText);
  (void)person->AddColumn("CountryId", ColumnType::kInt64);
  (void)person->SetPrimaryKey(0);
  (void)person->AppendRow({Value::Int(1), Value::Text("Rick"), Value::Int(1)});
  (void)person->AppendRow(
      {Value::Int(2), Value::Text("Julie"), Value::Int(2)});
  (void)person->AppendRow(
      {Value::Int(3), Value::Text("Kevin"), Value::Int(2)});
  if (!db.AddForeignKey("Person", "CountryId", "Country").ok()) abort();
  if (!db.Finalize().ok()) abort();
  return db;
}

// Best score for `cells` on the current epoch, or 0 when nothing
// matches (empty top-k).
double BestScore(const LiveS4System& live, const Cells& cells) {
  auto pinned = live.current();
  auto r = pinned->Search(cells, SmallOptions());
  if (!r.ok()) abort();
  return r->topk.empty() ? 0.0 : r->topk[0].score;
}

// ---------------------------------------------------------------------
// Unit semantics over the hand-built database.
// ---------------------------------------------------------------------

TEST(LiveMutationTest, InsertUpdateDeleteLifecycle) {
  auto live_or = LiveS4System::Create(MakeTinyDb());
  ASSERT_TRUE(live_or.ok()) << live_or.status();
  LiveS4System& live = **live_or;
  EXPECT_EQ(live.epoch(), 0u);
  EXPECT_EQ(BestScore(live, {{"zelkova"}}), 0.0);

  auto ins = live.Apply({Mutation::Insert(
      "Person", {Value::Int(50), Value::Text("zelkova"), Value::Int(2)})});
  ASSERT_TRUE(ins.ok()) << ins.status();
  EXPECT_EQ(ins->applied, 1);
  EXPECT_EQ(ins->epoch, 1u);
  EXPECT_TRUE(ins->error.empty());
  const Table* person = live.db().FindTable("Person");
  ASSERT_EQ(ins->touched, std::vector<TableId>{person->id()});
  EXPECT_GT(BestScore(live, {{"zelkova"}}), 0.0);
  EXPECT_GE(person->FindByPk(50), 0);

  auto upd = live.Apply(
      {Mutation::Update("Person", 50, "Name", Value::Text("quasar"))});
  ASSERT_TRUE(upd.ok()) << upd.status();
  EXPECT_EQ(upd->epoch, 2u);
  EXPECT_EQ(BestScore(live, {{"zelkova"}}), 0.0);
  EXPECT_GT(BestScore(live, {{"quasar"}}), 0.0);

  auto del = live.Apply({Mutation::Delete("Person", 50)});
  ASSERT_TRUE(del.ok()) << del.status();
  EXPECT_EQ(del->epoch, 3u);
  EXPECT_EQ(BestScore(live, {{"quasar"}}), 0.0);
  EXPECT_EQ(person->FindByPk(50), -1);
}

TEST(LiveMutationTest, BatchKeepsAppliedPrefixOnFailure) {
  auto live_or = LiveS4System::Create(MakeTinyDb());
  ASSERT_TRUE(live_or.ok());
  LiveS4System& live = **live_or;

  // [good insert, bad delete, never-reached insert]: the prefix
  // publishes, the tail does not.
  auto r = live.Apply(
      {Mutation::Insert(
           "Person", {Value::Int(60), Value::Text("tangerine"), Value::Null()}),
       Mutation::Delete("Person", 9999),
       Mutation::Insert(
           "Person", {Value::Int(61), Value::Text("umbra"), Value::Null()})});
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_EQ(r->applied, 1);
  EXPECT_EQ(r->epoch, 1u);
  EXPECT_FALSE(r->error.empty());
  EXPECT_FALSE(r->interrupted);
  EXPECT_GT(BestScore(live, {{"tangerine"}}), 0.0);
  EXPECT_EQ(BestScore(live, {{"umbra"}}), 0.0);
  EXPECT_EQ(live.db().FindTable("Person")->FindByPk(61), -1);
}

TEST(LiveMutationTest, ErrorsAreTypedAndPublishNothing) {
  auto live_or = LiveS4System::Create(MakeTinyDb());
  ASSERT_TRUE(live_or.ok());
  LiveS4System& live = **live_or;

  // Each failing-first-op batch returns a status and leaves the epoch
  // untouched.
  EXPECT_FALSE(live.Apply({Mutation::Delete("Nope", 1)}).ok());
  EXPECT_FALSE(live.Apply({Mutation::Delete("Person", 777)}).ok());
  EXPECT_FALSE(
      live.Apply({Mutation::Update("Person", 1, "Nope", Value::Null())})
          .ok());
  // The pk column is a row's identity; rewriting it is rejected.
  EXPECT_FALSE(
      live.Apply({Mutation::Update("Person", 1, "Id", Value::Int(9))}).ok());
  // Type mismatch: text into an INT64 column.
  EXPECT_FALSE(
      live.Apply(
              {Mutation::Update("Person", 1, "CountryId", Value::Text("x"))})
          .ok());
  EXPECT_EQ(live.epoch(), 0u);

  // A pre-cancelled token applies nothing.
  StopToken stop;
  stop.Cancel();
  auto cancelled = live.Apply(
      {Mutation::Delete("Person", 1)}, &stop);
  ASSERT_FALSE(cancelled.ok());
  EXPECT_EQ(cancelled.status().code(), StatusCode::kCancelled);
  EXPECT_EQ(live.epoch(), 0u);
  EXPECT_GE(live.db().FindTable("Person")->FindByPk(1), 0);
}

TEST(LiveMutationTest, MidBatchCancellationKeepsConsistentPrefix) {
  auto live_or = LiveS4System::Create(MakeTinyDb());
  ASSERT_TRUE(live_or.ok());
  LiveS4System& live = **live_or;

  std::vector<Mutation> batch;
  for (int i = 0; i < 400; ++i) {
    batch.push_back(Mutation::Insert(
        "Person",
        {Value::Int(1000 + i), Value::Text(StrFormat("bulk%d", i)),
         Value::Null()}));
  }
  StopToken stop;
  std::thread canceller([&stop] {
    std::this_thread::sleep_for(std::chrono::microseconds(300));
    stop.Cancel();
  });
  auto r = live.Apply(batch, &stop);
  canceller.join();

  // Whether the stop landed before the first op, mid-batch, or after
  // the last, the published state must equal a from-scratch rebuild of
  // the master — the applied prefix is a consistent database.
  int64_t applied = 0;
  if (r.ok()) {
    applied = r->applied;
    EXPECT_TRUE(r->interrupted || applied == 400);
  } else {
    EXPECT_EQ(r.status().code(), StatusCode::kCancelled);
  }
  EXPECT_EQ(live.db().FindTable("Person")->NumRows(), 3 + applied);
  auto rebuilt = S4System::Create(live.db());
  ASSERT_TRUE(rebuilt.ok());
  const Cells cells = {{"bulk7", "Canada"}};
  auto ref = (*rebuilt)->Search(cells, SmallOptions());
  auto got = live.current()->Search(cells, SmallOptions());
  ASSERT_TRUE(ref.ok());
  ASSERT_TRUE(got.ok());
  ExpectBitIdentical(*ref, *got, "post-cancel prefix");
}

// ---------------------------------------------------------------------
// Rebuild-equivalence differential suite (the acceptance bar).
// ---------------------------------------------------------------------

class LiveRebuildDifferentialTest
    : public ::testing::TestWithParam<uint64_t> {};

TEST_P(LiveRebuildDifferentialTest, EpochsMatchFromScratchRebuilds) {
  const uint64_t seed = GetParam();
  datagen::RandomSchemaOptions opts;
  opts.seed = seed;
  opts.num_tables = 3 + static_cast<int32_t>(seed % 3);
  opts.max_rows = 12;
  auto db = datagen::MakeRandomSchema(opts);
  ASSERT_TRUE(db.ok()) << db.status();
  auto live_or = LiveS4System::Create(std::move(*db));
  ASSERT_TRUE(live_or.ok()) << live_or.status();
  LiveS4System& live = **live_or;

  Rng rng(seed * 977 + 3);
  const Cells cells = RandomCells(rng, opts.vocab_size);
  const SearchOptions base = SmallOptions();

  // Epoch 0 stays pinned (and must stay bit-stable) across every
  // mutation below.
  auto epoch0 = live.current();
  auto epoch0_before = epoch0->Search(cells, base);
  ASSERT_TRUE(epoch0_before.ok()) << epoch0_before.status();

  int64_t next_pk = 100000;
  for (int round = 0; round < 3; ++round) {
    std::vector<Mutation> batch;
    const int n = 1 + static_cast<int>(rng.Uniform(3));
    for (int i = 0; i < n; ++i) {
      batch.push_back(RandomOp(rng, live.db(), &next_pk, opts.vocab_size));
    }
    auto applied = live.Apply(batch);
    ASSERT_TRUE(applied.ok()) << applied.status();
    ASSERT_GE(applied->applied, 1);
    EXPECT_EQ(applied->epoch, live.epoch());

    // From-scratch rebuild over the mutated master vs the published
    // epoch: every strategy, thread count, and shard slice.
    auto rebuilt = S4System::Create(live.db());
    ASSERT_TRUE(rebuilt.ok()) << rebuilt.status();
    auto pinned = live.current();
    const std::string tag =
        StrFormat(" seed=%llu round=%d", static_cast<unsigned long long>(seed),
                  round);
    for (S4System::Strategy strategy : kStrategies) {
      for (int32_t threads : {1, 4}) {
        SearchOptions options = base;
        options.num_threads = threads;
        auto ref = (*rebuilt)->Search(cells, options, strategy);
        auto got = pinned->Search(cells, options, strategy);
        ASSERT_TRUE(ref.ok()) << ref.status();
        ASSERT_TRUE(got.ok()) << got.status();
        ExpectBitIdentical(
            *ref, *got,
            StrFormat("strategy=%d T=%d", static_cast<int>(strategy),
                      threads) +
                tag);
      }
    }
    for (int32_t shards : {2, 4}) {
      for (int32_t index = 0; index < shards; ++index) {
        SearchOptions options = base;
        options.shard_count = shards;
        options.shard_index = index;
        auto ref = (*rebuilt)->Search(cells, options);
        auto got = pinned->Search(cells, options);
        ASSERT_TRUE(ref.ok()) << ref.status();
        ASSERT_TRUE(got.ok()) << got.status();
        ExpectBitIdentical(
            *ref, *got,
            StrFormat("slice %d/%d", index, shards) + tag);
      }
    }
  }

  // Old epochs are immutable: the pinned epoch-0 handle answers exactly
  // as it did before any mutation existed.
  auto epoch0_after = epoch0->Search(cells, base);
  ASSERT_TRUE(epoch0_after.ok());
  ExpectBitIdentical(*epoch0_before, *epoch0_after, "pinned epoch 0");
}

INSTANTIATE_TEST_SUITE_P(Seeds, LiveRebuildDifferentialTest,
                         ::testing::Range<uint64_t>(1, 7));

// ---------------------------------------------------------------------
// Per-relation cache invalidation at the service layer (the
// InvalidateSharedCache satellite).
// ---------------------------------------------------------------------

// Two disconnected schema components: the Figure-1 database (deep
// enough that searches demonstrably populate the cross-query sub-PJ
// cache) plus an unreachable Maker/Product pair. Mutations in one
// component cannot touch any candidate tree of the other, so its
// cached sub-PJs must keep hitting.
Database MakeTwoComponentDb() {
  auto tpch = datagen::MakeTpchMini();
  if (!tpch.ok()) abort();
  Database db = std::move(*tpch);
  Table* maker = db.AddTable("Maker").value();
  (void)maker->AddColumn("Id", ColumnType::kInt64);
  (void)maker->AddColumn("Name", ColumnType::kText);
  (void)maker->SetPrimaryKey(0);
  (void)maker->AppendRow({Value::Int(1), Value::Text("Acme")});
  Table* product = db.AddTable("Product").value();
  (void)product->AddColumn("Id", ColumnType::kInt64);
  (void)product->AddColumn("Name", ColumnType::kText);
  (void)product->AddColumn("MakerId", ColumnType::kInt64);
  (void)product->SetPrimaryKey(0);
  (void)product->AppendRow(
      {Value::Int(1), Value::Text("Blender"), Value::Int(1)});
  if (!db.AddForeignKey("Product", "MakerId", "Maker").ok()) abort();
  if (!db.Finalize().ok()) abort();
  return db;
}

TEST(LiveServiceCacheTest, UnrelatedRelationEntriesSurviveMutation) {
  auto live_or = LiveS4System::Create(MakeTwoComponentDb());
  ASSERT_TRUE(live_or.ok()) << live_or.status();
  LiveS4System& live = **live_or;
  ServiceOptions sopts;
  sopts.num_workers = 1;
  S4Service service(live, sopts);

  // The Figure 2(a) sheet matches only tpch-component terms; its
  // candidate trees never reach Maker/Product.
  SearchOptions options;
  options.k = 5;
  options.num_threads = 2;
  auto search = [&] {
    ServiceRequest req;
    req.cells = {{"Rick", "USA", "Xbox"},
                 {"Julie", "", "iPhone"},
                 {"Kevin", "Canada", ""}};
    req.options = options;
    return service.Search(std::move(req));
  };

  auto first = search();
  ASSERT_TRUE(first.ok()) << first.status();
  const int64_t hits1 = service.stats().shared_cache.hits;
  auto second = search();
  ASSERT_TRUE(second.ok());
  ExpectBitIdentical(*first, *second, "warm repeat");
  const int64_t hits2 = service.stats().shared_cache.hits;
  EXPECT_GT(hits2, hits1);  // the cache is demonstrably in play

  // A write to the OTHER component: no generation bump, bytes intact,
  // and the warmed entries keep hitting.
  const uint64_t gen = service.stats().cache_generation;
  const size_t warm_bytes = service.shared_cache().bytes_used();
  ASSERT_GT(warm_bytes, 0u);
  auto mut = service.Mutate({Mutation::Insert(
      "Product", {Value::Int(50), Value::Text("Toaster"), Value::Null()})});
  ASSERT_TRUE(mut.ok()) << mut.status();
  EXPECT_EQ(mut->applied, 1);
  EXPECT_EQ(service.stats().cache_generation, gen);
  EXPECT_EQ(service.shared_cache().bytes_used(), warm_bytes);

  auto third = search();
  ASSERT_TRUE(third.ok());
  ExpectBitIdentical(*first, *third, "post-unrelated-mutation");
  const int64_t hits3 = service.stats().shared_cache.hits;
  EXPECT_GE(hits3 - hits2, hits2 - hits1)
      << "cached sub-PJs of the untouched component stopped hitting";

  // A write to a COVERED relation: stamped keys retire the stale
  // entries, and the answer equals a from-scratch rebuild.
  auto covered = service.Mutate({Mutation::Insert(
      "Customer",
      {Value::Int(70), Value::Text("Rick Vaughn"), Value::Int(2)})});
  ASSERT_TRUE(covered.ok()) << covered.status();
  EXPECT_EQ(service.stats().cache_generation, gen);
  auto fourth = search();
  ASSERT_TRUE(fourth.ok());
  auto rebuilt = S4System::Create(live.db());
  ASSERT_TRUE(rebuilt.ok());
  auto ref = (*rebuilt)->Search({{"Rick", "USA", "Xbox"},
                                 {"Julie", "", "iPhone"},
                                 {"Kevin", "Canada", ""}},
                                options);
  ASSERT_TRUE(ref.ok());
  ExpectBitIdentical(*ref, *fourth, "post-covered-mutation");

  // The blunt instrument still works: one call drops everything.
  service.InvalidateSharedCache();
  EXPECT_EQ(service.stats().cache_generation, gen + 1);
  EXPECT_EQ(service.shared_cache().bytes_used(), 0u);
  auto fifth = search();
  ASSERT_TRUE(fifth.ok());
  ExpectBitIdentical(*ref, *fifth, "post-invalidate-all");
}

// ---------------------------------------------------------------------
// Concurrent searches during mutations (tsan suite): every observed
// top-k must equal one epoch-consistent from-scratch rebuild.
// ---------------------------------------------------------------------

TEST(LiveConcurrencyTest, SearchersAlwaysSeeOneConsistentEpoch) {
  datagen::RandomSchemaOptions opts;
  opts.seed = 42;
  opts.num_tables = 3;
  opts.max_rows = 10;
  auto db = datagen::MakeRandomSchema(opts);
  ASSERT_TRUE(db.ok()) << db.status();
  auto live_or = LiveS4System::Create(std::move(*db));
  ASSERT_TRUE(live_or.ok()) << live_or.status();
  LiveS4System& live = **live_or;

  Rng rng(991);
  const Cells cells = RandomCells(rng, opts.vocab_size);
  SearchOptions options = SmallOptions();
  options.enumeration.max_queries = 1500;
  options.num_threads = 2;

  // Pre-generate every writer batch against the initial snapshot; ops
  // invalidated by interleaving simply stop their batch early, which
  // the deterministic replay below reproduces.
  constexpr int kWriters = 2;
  constexpr int kBatchesPerWriter = 3;
  constexpr int kSearchers = 2;
  constexpr int kSearchesEach = 6;
  int64_t next_pk = 500000;
  std::vector<std::vector<std::vector<Mutation>>> plans(kWriters);
  for (int w = 0; w < kWriters; ++w) {
    plans[w].resize(kBatchesPerWriter);
    for (int b = 0; b < kBatchesPerWriter; ++b) {
      const int n = 1 + static_cast<int>(rng.Uniform(2));
      for (int i = 0; i < n; ++i) {
        plans[w][b].push_back(
            RandomOp(rng, live.db(), &next_pk, opts.vocab_size));
      }
    }
  }

  // The interleaving itself. Writers record (epoch, plan slot) of each
  // published batch; searchers record result fingerprints, checking
  // pinned-epoch self-consistency as they go.
  struct AppliedBatch {
    uint64_t epoch;
    int writer;
    int batch;
    int64_t applied;
  };
  std::mutex record_mu;
  std::vector<AppliedBatch> applied_order;
  std::vector<std::string> observed;
  std::vector<std::thread> threads;
  for (int w = 0; w < kWriters; ++w) {
    threads.emplace_back([&, w] {
      for (int b = 0; b < kBatchesPerWriter; ++b) {
        auto r = live.Apply(plans[w][b]);
        if (r.ok()) {
          std::lock_guard<std::mutex> lock(record_mu);
          applied_order.push_back({r->epoch, w, b, r->applied});
        }
        std::this_thread::yield();
      }
    });
  }
  for (int s = 0; s < kSearchers; ++s) {
    threads.emplace_back([&] {
      for (int i = 0; i < kSearchesEach; ++i) {
        auto pinned = live.current();
        auto a = pinned->Search(cells, options);
        auto b = pinned->Search(cells, options);
        if (!a.ok() || !b.ok()) {
          ADD_FAILURE() << "search failed mid-interleaving";
          return;
        }
        EXPECT_EQ(ResultKey(*a), ResultKey(*b))
            << "same pinned epoch answered differently";
        std::lock_guard<std::mutex> lock(record_mu);
        observed.push_back(ResultKey(*a));
      }
    });
  }
  for (std::thread& t : threads) t.join();

  // Replay the recorded apply order on an identical fresh master and
  // collect the reference fingerprint of every epoch along the way.
  std::sort(applied_order.begin(), applied_order.end(),
            [](const AppliedBatch& a, const AppliedBatch& b) {
              return a.epoch < b.epoch;
            });
  auto db2 = datagen::MakeRandomSchema(opts);
  ASSERT_TRUE(db2.ok());
  auto replay_or = LiveS4System::Create(std::move(*db2));
  ASSERT_TRUE(replay_or.ok());
  LiveS4System& replay = **replay_or;
  std::unordered_set<std::string> epoch_keys;
  {
    auto ref = S4System::Create(replay.db());
    ASSERT_TRUE(ref.ok());
    auto r = (*ref)->Search(cells, options);
    ASSERT_TRUE(r.ok());
    epoch_keys.insert(ResultKey(*r));
  }
  for (const AppliedBatch& ab : applied_order) {
    auto r = replay.Apply(plans[ab.writer][ab.batch]);
    ASSERT_TRUE(r.ok()) << r.status();
    ASSERT_EQ(r->epoch, ab.epoch) << "replay diverged from the live order";
    ASSERT_EQ(r->applied, ab.applied);
    auto ref = S4System::Create(replay.db());
    ASSERT_TRUE(ref.ok());
    auto res = (*ref)->Search(cells, options);
    ASSERT_TRUE(res.ok());
    epoch_keys.insert(ResultKey(*res));
  }

  ASSERT_EQ(observed.size(),
            static_cast<size_t>(kSearchers * kSearchesEach));
  for (size_t i = 0; i < observed.size(); ++i) {
    EXPECT_TRUE(epoch_keys.count(observed[i]) > 0)
        << "search " << i
        << " returned a top-k matching no epoch-consistent rebuild";
  }
}

// ---------------------------------------------------------------------
// Wire write path end to end: a real server over a live system.
// ---------------------------------------------------------------------

struct LiveServerHarness {
  std::unique_ptr<LiveS4System> live;
  std::unique_ptr<S4Service> service;
  std::unique_ptr<net::S4Server> server;

  LiveServerHarness() {
    auto l = LiveS4System::Create(MakeTinyDb());
    if (!l.ok()) abort();
    live = std::move(*l);
    ServiceOptions sopts;
    sopts.num_workers = 2;
    sopts.max_queue = 32;
    service = std::make_unique<S4Service>(*live, sopts);
    server = std::make_unique<net::S4Server>(service.get());
    if (!server->Start().ok()) abort();
  }

  net::S4Client MakeClient() const {
    net::ClientOptions copts;
    copts.port = server->port();
    copts.request_timeout_seconds = 60.0;
    return net::S4Client(copts);
  }
};

TEST(LiveNetTest, MutateRoundTripOverWire) {
  LiveServerHarness h;
  net::S4Client client = h.MakeClient();

  uint64_t request_id = 0;
  auto mut = client.Mutate(
      {Mutation::Insert(
          "Person", {Value::Int(100), Value::Text("zyxwv"), Value::Int(1)})},
      &request_id);
  ASSERT_TRUE(mut.ok()) << mut.status();
  EXPECT_EQ(mut->applied, 1);
  EXPECT_EQ(mut->epoch, 1u);
  EXPECT_TRUE(mut->error.empty());
  ASSERT_EQ(mut->touched.size(), 1u);
  EXPECT_EQ(mut->touched[0], h.live->db().FindTable("Person")->id());
  EXPECT_GT(mut->server_seconds, 0.0);
  EXPECT_GT(request_id, 0u);
  EXPECT_EQ(h.server->counters().mutate_requests.load(), 1);

  // The write is visible to a search on the same connection, and the
  // served answer is bit-identical to an in-process pinned search.
  SearchOptions options = SmallOptions();
  options.num_threads = 2;
  const Cells cells = {{"zyxwv", "USA"}};
  auto served = client.Search(net::NetSearchRequest::From(
      cells, options, S4System::Strategy::kFastTopK));
  ASSERT_TRUE(served.ok()) << served.status();
  ASSERT_FALSE(served->topk.empty());
  auto local = h.live->current()->Search(cells, options);
  ASSERT_TRUE(local.ok());
  ASSERT_EQ(served->topk.size(), local->topk.size());
  for (size_t i = 0; i < served->topk.size(); ++i) {
    EXPECT_EQ(served->topk[i].signature, local->topk[i].query.signature());
    EXPECT_EQ(served->topk[i].score, local->topk[i].score);
  }

  auto del = client.Mutate({Mutation::Delete("Person", 100)});
  ASSERT_TRUE(del.ok());
  EXPECT_EQ(del->applied, 1);
  EXPECT_EQ(del->epoch, 2u);
  auto gone = client.Search(net::NetSearchRequest::From(
      cells, options, S4System::Strategy::kFastTopK));
  ASSERT_TRUE(gone.ok());
  for (const net::NetTopkEntry& e : gone->topk) {
    EXPECT_EQ(e.sql.find("zyxwv"), std::string::npos);
  }
}

TEST(LiveNetTest, PartialBatchAndTypedFailuresOverWire) {
  LiveServerHarness h;
  net::S4Client client = h.MakeClient();

  // Mid-batch failure: still a kMutateResponse, carrying the applied
  // prefix and the first error.
  auto partial = client.Mutate(
      {Mutation::Insert(
           "Person", {Value::Int(200), Value::Text("prefix"), Value::Null()}),
       Mutation::Delete("Person", 31337)});
  ASSERT_TRUE(partial.ok()) << partial.status();
  EXPECT_EQ(partial->applied, 1);
  EXPECT_FALSE(partial->error.empty());
  EXPECT_FALSE(partial->interrupted);

  // First-op failure: a typed error frame, and the connection survives
  // for the next request.
  auto bad = client.Mutate({Mutation::Delete("NoSuchTable", 1)});
  EXPECT_FALSE(bad.ok());
  EXPECT_TRUE(client.Ping().ok());
  auto after = client.Mutate({Mutation::Delete("Person", 200)});
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(after->applied, 1);
}

TEST(LiveNetTest, ImmutableServerRejectsWritesWithTypedError) {
  // A service over a static S4System: the default dispatcher answers
  // kMutateRequest with FailedPrecondition instead of dropping the
  // stream.
  static Database* db = new Database(MakeTinyDb());
  auto system = S4System::Create(*db);
  ASSERT_TRUE(system.ok());
  ServiceOptions sopts;
  sopts.num_workers = 1;
  S4Service service(**system, sopts);
  net::S4Server server(&service);
  ASSERT_TRUE(server.Start().ok());
  net::ClientOptions copts;
  copts.port = server.port();
  net::S4Client client(copts);

  auto mut = client.Mutate({Mutation::Delete("Person", 1)});
  ASSERT_FALSE(mut.ok());
  EXPECT_EQ(mut.status().code(), StatusCode::kFailedPrecondition);
  EXPECT_TRUE(client.Ping().ok());
  server.Stop();
}

// ---------------------------------------------------------------------
// Scatter-gather write broadcast.
// ---------------------------------------------------------------------

struct LiveDistHarness {
  std::vector<std::unique_ptr<LiveS4System>> lives;
  std::vector<std::unique_ptr<S4Service>> services;
  std::vector<std::unique_ptr<net::S4Server>> servers;
  std::unique_ptr<dist::S4Coordinator> coordinator;

  explicit LiveDistHarness(int32_t shard_count) {
    dist::CoordinatorOptions copts;
    for (int32_t i = 0; i < shard_count; ++i) {
      auto live = LiveS4System::Create(MakeTinyDb());
      if (!live.ok()) abort();
      lives.push_back(std::move(*live));
      ServiceOptions sopts;
      sopts.num_workers = 2;
      sopts.max_queue = 32;
      sopts.shard_count = shard_count;
      sopts.shard_index = i;
      services.push_back(
          std::make_unique<S4Service>(*lives.back(), sopts));
      servers.push_back(
          std::make_unique<net::S4Server>(services.back().get()));
      if (!servers.back()->Start().ok()) abort();
      copts.shards.push_back({"127.0.0.1", servers.back()->port()});
    }
    coordinator = std::make_unique<dist::S4Coordinator>(std::move(copts));
  }
};

TEST(LiveDistTest, MutateBroadcastReachesEveryShard) {
  LiveDistHarness h(2);

  auto result = h.coordinator->Mutate(
      {Mutation::Insert(
          "Person", {Value::Int(300), Value::Text("glimmer"), Value::Int(2)})});
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_TRUE(result->complete);
  EXPECT_EQ(result->applied, 1);
  EXPECT_TRUE(result->diverged_shards.empty());
  ASSERT_EQ(result->shards.size(), 2u);
  for (const dist::DistShardMutate& s : result->shards) {
    EXPECT_TRUE(s.reached) << s.error;
    EXPECT_EQ(s.response.applied, 1);
    EXPECT_EQ(s.response.epoch, 1u);
  }
  // Identical apply order -> identical epochs on every shard.
  for (const auto& live : h.lives) EXPECT_EQ(live->epoch(), 1u);

  // A scatter-gather search merged over the mutated shards equals a
  // single-node rebuild of the mutated database.
  SearchOptions options = SmallOptions();
  options.num_threads = 2;
  const Cells cells = {{"glimmer", "Canada"}};
  auto dist_result = h.coordinator->Search(net::NetSearchRequest::From(
      cells, options, S4System::Strategy::kFastTopK));
  ASSERT_TRUE(dist_result.ok()) << dist_result.status();
  EXPECT_TRUE(dist_result->complete);
  auto rebuilt = S4System::Create(h.lives[0]->db());
  ASSERT_TRUE(rebuilt.ok());
  auto ref = (*rebuilt)->Search(cells, options);
  ASSERT_TRUE(ref.ok());
  ASSERT_EQ(ref->topk.size(), dist_result->topk.size());
  ASSERT_FALSE(dist_result->topk.empty());
  for (size_t i = 0; i < ref->topk.size(); ++i) {
    EXPECT_EQ(dist_result->topk[i].signature,
              ref->topk[i].query.signature());
    EXPECT_EQ(dist_result->topk[i].score, ref->topk[i].score);
  }

  // Degenerate batches are coordinator-level errors, not broadcasts.
  EXPECT_FALSE(h.coordinator->Mutate({}).ok());
}

}  // namespace
}  // namespace s4
