// Work-stealing thread pool: coverage, exception propagation, shutdown
// draining, and concurrent submission.
#include <atomic>
#include <chrono>
#include <memory>
#include <stdexcept>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/thread_pool.h"

namespace s4 {
namespace {

// Sink that keeps busy-loops from being optimized away.
std::atomic<int64_t> benchmark_guard_{0};

TEST(ThreadPoolTest, DefaultThreadsAtLeastOne) {
  EXPECT_GE(ThreadPool::DefaultThreads(), 1);
  ThreadPool pool;  // auto-sized
  EXPECT_EQ(pool.num_threads(), ThreadPool::DefaultThreads());
  ThreadPool clamped(-3);
  EXPECT_EQ(clamped.num_threads(), ThreadPool::DefaultThreads());
}

TEST(ThreadPoolTest, ParallelForCoversEachIndexExactlyOnce) {
  ThreadPool pool(4);
  constexpr size_t kN = 10000;
  std::vector<std::atomic<int32_t>> hits(kN);
  for (auto& h : hits) h.store(0);
  pool.ParallelFor(kN, [&](size_t i) { hits[i].fetch_add(1); });
  for (size_t i = 0; i < kN; ++i) {
    ASSERT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPoolTest, ParallelForHandlesEdgeSizes) {
  ThreadPool pool(4);
  std::atomic<int32_t> count{0};
  pool.ParallelFor(0, [&](size_t) { count.fetch_add(1); });
  EXPECT_EQ(count.load(), 0);
  pool.ParallelFor(1, [&](size_t i) { count.fetch_add(i == 0 ? 1 : 100); });
  EXPECT_EQ(count.load(), 1);
  // More indices than workers and vice versa.
  pool.ParallelFor(3, [&](size_t) { count.fetch_add(1); });
  EXPECT_EQ(count.load(), 4);
  ThreadPool one(1);
  one.ParallelFor(5, [&](size_t) { count.fetch_add(1); });
  EXPECT_EQ(count.load(), 9);
}

TEST(ThreadPoolTest, ParallelForPropagatesExceptionAndStaysUsable) {
  ThreadPool pool(4);
  EXPECT_THROW(
      pool.ParallelFor(100,
                       [&](size_t i) {
                         if (i == 37) throw std::runtime_error("boom");
                       }),
      std::runtime_error);
  // The pool must survive a throwing loop and run subsequent work.
  std::atomic<int32_t> count{0};
  pool.ParallelFor(50, [&](size_t) { count.fetch_add(1); });
  EXPECT_EQ(count.load(), 50);
}

TEST(ThreadPoolTest, SubmitFutureRethrows) {
  ThreadPool pool(2);
  std::future<void> ok = pool.Submit([] {});
  std::future<void> bad =
      pool.Submit([] { throw std::logic_error("task failed"); });
  EXPECT_NO_THROW(ok.get());
  EXPECT_THROW(bad.get(), std::logic_error);
}

TEST(ThreadPoolTest, DestructorDrainsQueuedTasks) {
  constexpr int32_t kTasks = 200;
  std::atomic<int32_t> ran{0};
  {
    ThreadPool pool(2);
    for (int32_t i = 0; i < kTasks; ++i) {
      pool.Submit([&] {
        std::this_thread::sleep_for(std::chrono::microseconds(50));
        ran.fetch_add(1);
      });
    }
    // Destructor must finish every queued task before joining.
  }
  EXPECT_EQ(ran.load(), kTasks);
}

TEST(ThreadPoolTest, ConcurrentSubmitters) {
  ThreadPool pool(4);
  constexpr int32_t kPerSubmitter = 500;
  std::atomic<int32_t> ran{0};
  std::vector<std::thread> submitters;
  std::vector<std::future<void>> futures[4];
  std::mutex mu;
  for (int s = 0; s < 4; ++s) {
    submitters.emplace_back([&, s] {
      for (int32_t i = 0; i < kPerSubmitter; ++i) {
        auto f = pool.Submit([&] { ran.fetch_add(1); });
        std::lock_guard<std::mutex> lock(mu);
        futures[s].push_back(std::move(f));
      }
    });
  }
  for (auto& t : submitters) t.join();
  for (auto& fs : futures) {
    for (auto& f : fs) f.get();
  }
  EXPECT_EQ(ran.load(), 4 * kPerSubmitter);
}

TEST(ThreadPoolTest, ParallelForBalancesUnevenWork) {
  // Dynamic index claiming: a few expensive indices must not serialize
  // the loop behind one worker's static share.
  ThreadPool pool(4);
  std::atomic<int64_t> total{0};
  pool.ParallelFor(64, [&](size_t i) {
    int64_t spin = (i % 16 == 0) ? 20000 : 10;
    int64_t acc = 0;
    for (int64_t j = 0; j < spin; ++j) acc += j;
    benchmark_guard_.store(acc, std::memory_order_relaxed);
    total.fetch_add(1);
  });
  EXPECT_EQ(total.load(), 64);
}

TEST(ThreadPoolTest, StatsCountExecutedTasks) {
  ThreadPool pool(2);
  const ThreadPool::Stats before = pool.stats();
  EXPECT_EQ(before.executed, 0);
  EXPECT_EQ(before.queued, 0);

  constexpr int32_t kTasks = 200;
  std::vector<std::future<void>> futures;
  futures.reserve(kTasks);
  for (int32_t i = 0; i < kTasks; ++i) {
    futures.push_back(pool.Submit([] {}));
  }
  for (auto& f : futures) f.get();

  const ThreadPool::Stats after = pool.stats();
  EXPECT_EQ(after.executed, kTasks);
  // Steals are opportunistic (scheduling-dependent) but never negative
  // and never exceed the executed count.
  EXPECT_GE(after.steals, 0);
  EXPECT_LE(after.steals, after.executed);
}

}  // namespace
}  // namespace s4
