// Appendix A.2 spelling-error handling: edit-distance term expansion
// with union posting-list semantics.
#include <gtest/gtest.h>

#include "strategy/strategy.h"
#include "tests/test_util.h"
#include "text/edit_distance.h"

namespace s4 {
namespace {

using testing::Fig2aSheet;
using testing::TpchGraph;
using testing::TpchIndex;

TEST(EditDistanceTest, WithinEditDistance) {
  EXPECT_TRUE(WithinEditDistance("xbox", "xbox", 0));
  EXPECT_FALSE(WithinEditDistance("xbox", "xbx", 0));
  EXPECT_TRUE(WithinEditDistance("xbox", "xbx", 1));    // deletion
  EXPECT_TRUE(WithinEditDistance("xbox", "xboxx", 1));  // insertion
  EXPECT_TRUE(WithinEditDistance("xbox", "xbux", 1));   // substitution
  EXPECT_FALSE(WithinEditDistance("xbox", "xu", 1));
  EXPECT_TRUE(WithinEditDistance("xbox", "xu", 3));
  EXPECT_TRUE(WithinEditDistance("", "ab", 2));
  EXPECT_FALSE(WithinEditDistance("", "ab", 1));
  EXPECT_TRUE(WithinEditDistance("kitten", "sitting", 3));
  EXPECT_FALSE(WithinEditDistance("kitten", "sitting", 2));
}

TEST(EditDistanceTest, SimilarTermsOnTpchDict) {
  const TermDict& dict = TpchIndex().dict();
  // "xbax" is one substitution away from "xbox" only.
  std::vector<TermId> similar = SimilarTerms(dict, "xbax", 1);
  ASSERT_EQ(similar.size(), 1u);
  EXPECT_EQ(dict.term(similar[0]), "xbox");
  // Distance 0 = exact lookup.
  EXPECT_TRUE(SimilarTerms(dict, "xbax", 0).empty());
  EXPECT_EQ(SimilarTerms(dict, "xbox", 0).size(), 1u);
}

TEST(SpellingSearchTest, MisspelledSpreadsheetStillFindsQueries) {
  // "Xbax" (typo), "USAa" (typo): exact search finds nothing for these
  // terms; with spelling_edits=1 the search behaves like the clean one.
  auto sheet = ExampleSpreadsheet::FromCells({{"Xbax", "USAa"}},
                                             TpchIndex().tokenizer());
  ASSERT_TRUE(sheet.ok());

  SearchOptions exact;
  SearchResult none =
      SearchFastTopK(TpchIndex(), TpchGraph(), *sheet, exact);
  EXPECT_TRUE(none.topk.empty());

  SearchOptions fuzzy;
  fuzzy.score.spelling_edits = 1;
  SearchResult some =
      SearchFastTopK(TpchIndex(), TpchGraph(), *sheet, fuzzy);
  ASSERT_FALSE(some.topk.empty());
  // The Part "xbox" interpretation must be found.
  bool mentions_part = false;
  for (const ScoredQuery& sq : some.topk) {
    if (sq.query.ToString(TpchIndex().db()).find("Part") !=
        std::string::npos) {
      mentions_part = true;
    }
  }
  EXPECT_TRUE(mentions_part);
}

// Union semantics: expanding a term must count at most once per row even
// if several variants match the same cell, so fuzzy scores never exceed
// the clean-spreadsheet scores.
TEST(SpellingSearchTest, FuzzyScoresMatchCleanScores) {
  ExampleSpreadsheet clean = Fig2aSheet(TpchIndex());
  // Misspell every non-empty cell by appending a character.
  std::vector<std::vector<std::string>> cells;
  for (int32_t r = 0; r < clean.NumRows(); ++r) {
    cells.emplace_back();
    for (int32_t c = 0; c < clean.NumColumns(); ++c) {
      std::string raw = clean.cell(r, c).raw;
      if (!raw.empty()) raw += "q";
      cells.back().push_back(raw);
    }
  }
  auto fuzzy_sheet =
      ExampleSpreadsheet::FromCells(cells, TpchIndex().tokenizer());
  ASSERT_TRUE(fuzzy_sheet.ok());

  SearchOptions clean_opts;
  clean_opts.k = 5;
  SearchResult clean_result =
      SearchFastTopK(TpchIndex(), TpchGraph(), clean, clean_opts);

  SearchOptions fuzzy_opts = clean_opts;
  fuzzy_opts.score.spelling_edits = 1;
  SearchResult fuzzy_result =
      SearchFastTopK(TpchIndex(), TpchGraph(), *fuzzy_sheet, fuzzy_opts);

  // Same queries, same scores: every misspelled term expands to exactly
  // its clean form (unique within edit distance 1 in this tiny corpus).
  ASSERT_EQ(fuzzy_result.topk.size(), clean_result.topk.size());
  for (size_t i = 0; i < clean_result.topk.size(); ++i) {
    EXPECT_NEAR(fuzzy_result.topk[i].score, clean_result.topk[i].score,
                1e-9)
        << "rank " << i;
  }
}

TEST(SpellingSearchTest, StrategiesAgreeUnderExpansion) {
  auto sheet = ExampleSpreadsheet::FromCells(
      {{"Rik", "USA"}, {"Kevin", "Canda"}}, TpchIndex().tokenizer());
  ASSERT_TRUE(sheet.ok());
  SearchOptions options;
  options.k = 5;
  options.score.spelling_edits = 1;
  SearchResult naive =
      SearchNaive(TpchIndex(), TpchGraph(), *sheet, options);
  SearchResult fast =
      SearchFastTopK(TpchIndex(), TpchGraph(), *sheet, options);
  ASSERT_EQ(naive.topk.size(), fast.topk.size());
  ASSERT_FALSE(naive.topk.empty());
  for (size_t i = 0; i < naive.topk.size(); ++i) {
    EXPECT_NEAR(naive.topk[i].score, fast.topk[i].score, 1e-9);
    EXPECT_LE(naive.topk[i].score, naive.topk[i].upper_bound + 1e-9);
  }
}

TEST(ResolveExpansionTest, GroupsKeepUnionStructure) {
  auto sheet = ExampleSpreadsheet::FromCells({{"Xbax iphone"}},
                                             TpchIndex().tokenizer());
  ASSERT_TRUE(sheet.ok());
  ResolvedSpreadsheet rs =
      ResolvedSpreadsheet::Resolve(*sheet, TpchIndex().dict(), 1);
  // Two original terms -> two groups; 'xbax' expands to 'xbox'.
  ASSERT_EQ(rs.cell_term_groups[0][0].size(), 2u);
  EXPECT_EQ(rs.cell_num_terms[0][0], 2);
  // The flat list covers both groups.
  EXPECT_GE(rs.cell_terms[0][0].size(), 2u);
}

}  // namespace
}  // namespace s4
